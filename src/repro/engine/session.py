"""Batched explanation sessions: a thin facade over scheduler + service.

:meth:`ExplainSession.explain_many` is the multi-answer counterpart of
:func:`repro.core.attribution.attribute`: it computes the query's
lineage once, opens each answer's circuit against the shared
:class:`~repro.engine.cache.ArtifactCache` (one canonicalization pass
per answer, whose :class:`~repro.engine.cache.CircuitArtifacts` handle
is threaded through to the engine), and hands the resulting jobs to the
scheduler/service layer: :func:`~repro.engine.scheduler.plan_batch`
groups answers by canonical shape and plans the warm-up wave, and a
:class:`~repro.engine.service.Transport` executes the plan.  Per-tuple
budget/timeout outcomes are preserved: each answer gets its own
:class:`~repro.engine.base.EngineResult` with its own status, exactly
as the per-answer path reports them.

Three executors are supported, all long-lived (created once per
session, reused across ``explain_many`` calls, released by
:meth:`close` or by leaving the session's ``with`` block):

* ``"thread"`` (default) —
  :class:`~repro.engine.service.InProcessTransport`, a thread pool
  sharing the session's in-memory cache;
* ``"process"`` — :class:`~repro.engine.service.ProcessPoolTransport`,
  a *persistent* :class:`~concurrent.futures.ProcessPoolExecutor`.
  The warm-up wave runs in the parent (populating the session's cache
  and, when attached, its persistent store); the long-lived workers
  rebuild caches over the same store directory and keep them warm
  between calls;
* ``"socket"`` — :class:`~repro.engine.service.SocketTransport`, a
  client of a ``repro serve`` coordinator routing shape-affine shards
  to ``repro worker`` processes that share one store directory (pass
  ``coordinator="host:port"``).

Determinism: exact results are independent of scheduling (Fractions
from structure); for the sampling engines each answer's RNG seed is
:func:`~repro.engine.base.derive_answer_seed` — a stable hash of
``(options.seed, answer)`` — so batched runs are reproducible regardless
of interleaving or transport, invariant to answer order and subsetting,
and agree with the single-answer path at the same seed.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..circuits.circuit import Circuit

from ..core.numerics import coefficients_cache_info
from ..core.pipeline import QueryLike, to_plan
from ..db.database import Database
from ..db.evaluate import lineage
from ..compiler.knowledge import compile_component
from .base import EngineOptions, EngineResult, derive_answer_seed
from .cache import ArtifactCache
from .registry import get_engine
from .scheduler import (
    CompileCostModel,
    Job,
    artifact_component_planner,
    plan_batch,
)
from .service import (
    InProcessTransport,
    ProcessPoolTransport,
    SocketTransport,
    Transport,
)

#: Executor kinds accepted by :class:`ExplainSession`.
EXECUTORS = ("thread", "process", "socket")


class ExplainSession:
    """A database + method + cache bound together for batched work.

    The session is a context manager; transports (pools, worker
    connections) are created lazily, reused across calls, and shut down
    deterministically::

        with ExplainSession(db, executor="process") as session:
            first = session.explain_many(query)       # pool starts here
            second = session.explain_many(query)      # same warm pool
        # pool is gone, even if a batch raised

    Parameters
    ----------
    database:
        The database with its endogenous/exogenous partition.
    method:
        A registered engine name (see
        :func:`~repro.engine.registry.available_engines`).
    options:
        Engine options; the session's cache is injected into them.
    cache:
        Shared :class:`ArtifactCache`.  ``None`` creates a fresh one;
        pass ``ArtifactCache(max_entries=0)`` to measure uncached runs,
        or ``ArtifactCache(store=PersistentArtifactStore(dir))`` to
        share compiled artifacts across processes and runs.
    max_workers:
        Pool width for :meth:`explain_many` (``None`` = executor
        default; local transports only).
    executor:
        ``"thread"`` (default), ``"process"``, or ``"socket"`` — the
        default transport of :meth:`explain_many`.
    coordinator:
        ``"host:port"`` (or a ``(host, port)`` tuple) of a running
        coordinator; required for the ``"socket"`` executor.
    min_workers:
        Socket executor only: have the coordinator hold each batch
        until at least this many workers registered.
    op_timeout / batch_timeout / retries / degrade / connect_retry_for:
        Socket executor resilience knobs, passed through to
        :class:`~repro.engine.service.SocketTransport`: per-leg and
        per-batch deadlines, bounded retry with jittered backoff, and
        the ``degrade="local"`` fallback that runs a batch in-process
        (byte-identical Fractions) when the fleet is unreachable.
    """

    def __init__(
        self,
        database: Database,
        method: str = "exact",
        options: EngineOptions | None = None,
        cache: ArtifactCache | None = None,
        max_workers: int | None = None,
        executor: str = "thread",
        coordinator: str | tuple[str, int] | None = None,
        min_workers: int | None = None,
        op_timeout: float | None = 30.0,
        batch_timeout: float | None = 600.0,
        retries: int = 2,
        degrade: str | None = None,
        connect_retry_for: float = 10.0,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        self.database = database
        self.engine = get_engine(method)
        self.cache = cache if cache is not None else ArtifactCache()
        base = options if options is not None else EngineOptions()
        self.options = base.with_(cache=self.cache)
        self.max_workers = max_workers
        self.executor = executor
        self.coordinator = coordinator
        self.min_workers = min_workers
        self.op_timeout = op_timeout
        self.batch_timeout = batch_timeout
        self.retries = retries
        self.degrade = degrade
        self.connect_retry_for = connect_retry_for
        #: One calibrating compile cost model per session: the first
        #: cold batch schedules with structural estimates, later ones
        #: with scales learned from recorded compile timings.
        self.cost_model = CompileCostModel(self.options.pipeline_cost_scale)
        self._transports: dict[str, Transport] = {}
        self._closed = False
        self._answers_explained = 0
        self._unique_shapes = 0
        self._socket_batches = False
        self._remote_stats: dict[str, int] = {}
        self._remote_workers = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down every transport this session created (idempotent).

        Thread and process pools are joined; the socket transport's
        coordinator and workers live in their own processes and are
        *not* stopped — they are shared infrastructure.
        """
        self._closed = True
        transports, self._transports = self._transports, {}
        errors = []
        for transport in transports.values():
            try:
                transport.close()
            except Exception as error:  # keep closing the rest
                errors.append(error)
        if errors:
            raise errors[0]

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ExplainSession":
        if self._closed:
            raise RuntimeError("session is closed")
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            if not self._closed and self._transports:
                self.close()
        except Exception:
            pass

    def _transport(self, kind: str) -> Transport:
        transport = self._transports.get(kind)
        if transport is not None:
            return transport
        if kind == "thread":
            transport = InProcessTransport(self.max_workers)
        elif kind == "process":
            store = self.cache.store
            transport = ProcessPoolTransport(
                self.max_workers,
                str(store.directory) if store is not None else None,
            )
        else:
            if self.coordinator is None:
                raise ValueError(
                    "executor='socket' needs coordinator='host:port'"
                )
            transport = SocketTransport(
                self.coordinator,
                min_workers=self.min_workers,
                op_timeout=self.op_timeout,
                batch_timeout=self.batch_timeout,
                retries=self.retries,
                degrade=self.degrade,
                connect_retry_for=self.connect_retry_for,
            )
        self._transports[kind] = transport
        return transport

    # ------------------------------------------------------------------
    # Explaining
    # ------------------------------------------------------------------

    def explain_one(
        self, circuit: Circuit, players: Sequence[Hashable]
    ) -> EngineResult:
        """Explain a single prepared lineage circuit (cache-aware)."""
        return self.engine.explain_circuit(circuit, list(players), self.options)

    def explain_many(
        self,
        query: QueryLike,
        answers: Sequence[tuple] | None = None,
        executor: str | None = None,
    ) -> dict[tuple, EngineResult]:
        """Explain every answer of ``query`` (or the given subset).

        Returns one :class:`EngineResult` per answer, keyed by answer
        tuple and ordered like the query's answer list.  ``executor``
        overrides the session default for this call.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        executor = executor if executor is not None else self.executor
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        jobs = self._build_jobs(query, answers)
        plan = plan_batch(
            self.engine.name, jobs, self.engine.uses_cache,
            batch=(self.engine.supports_batch
                   and self.options.batch_execution),
            component_planner=self._component_planner(executor),
            cost_model=self.cost_model,
        )
        transport = self._transport(executor)
        outcomes = transport.run_batch(plan)
        if transport.kind == "socket":
            # Cumulative per worker lifetime, latest snapshot wins (no
            # summing across batches — that would double count).  An
            # empty snapshot is still a snapshot: it replaces stale
            # numbers from an earlier batch rather than keeping them.
            self._socket_batches = True
            self._remote_stats = dict(transport.remote_stats)
            self._remote_workers = getattr(transport, "remote_workers", 0)
        self._answers_explained += len(jobs)
        self._unique_shapes += plan.n_shapes
        return {job.answer: outcomes[job.index] for job in plan.jobs}

    def warm_ahead(
        self,
        query: QueryLike,
        answers: Sequence[tuple] | None = None,
        executor: str | None = None,
        wait: bool = True,
        timeout: float = 60.0,
    ) -> dict[str, int]:
        """Compile the query's distinct lineage shapes ahead of demand.

        Plans the batch exactly like :meth:`explain_many` and then
        compiles only the warm wave — one representative per canonical
        shape — without running Algorithm 1.  With the ``"socket"``
        executor the representatives go to the coordinator's
        compile-ahead queue and workers build the artifacts into the
        fleet's shared store off the request path (``wait=False``
        returns as soon as they are queued); locally the session cache
        (and its store, when attached) is warmed inline.  A subsequent
        :meth:`explain_many` of the same query then compiles nothing.

        Returns counters: ``shapes`` (distinct shapes planned),
        ``queued``, ``completed``, ``failed``, ``pending`` (tasks
        still in flight — nonzero only with ``wait=False`` or on
        timeout), and ``component_tasks`` (distinct canonical
        components the fleet-deduplicated one-pass compile phase
        covered before any representative ran — zero when every shape
        is warm or too small to memoize).
        """
        if self._closed:
            raise RuntimeError("session is closed")
        executor = executor if executor is not None else self.executor
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        jobs = self._build_jobs(query, answers)
        plan = plan_batch(
            self.engine.name, jobs, self.engine.uses_cache,
            component_planner=self._component_planner(executor),
            cost_model=self.cost_model,
        )
        if not plan.deduplicated:
            # Sampling engines never compile: nothing to warm.
            return {"shapes": 0, "queued": 0, "completed": 0,
                    "failed": 0, "pending": 0, "component_tasks": 0}
        component_tasks = (
            len(plan.pipeline.components) if plan.pipeline is not None else 0
        )
        if executor == "socket":
            transport = self._transport("socket")
            queued = transport.warm_batch(plan)
            status = (
                transport.wait_warm(timeout) if wait
                else transport.warm_status()
            )
            return {
                "shapes": plan.n_shapes,
                "queued": queued,
                "completed": int(status.get("completed", 0)),
                "failed": int(status.get("failed", 0)),
                "pending": int(status.get("pending", 0)),
                "component_tasks": component_tasks,
            }
        # Local executors: one-pass component phase first — each
        # distinct canonical component across *all* cold shapes
        # compiles exactly once (in parallel under ``compile_jobs``)
        # instead of redundantly inside each representative — then
        # each representative, now pure stitching, through the session
        # cache (with a store attached this also pre-warms
        # process-pool workers, which reload from the same directory).
        budget = self.options.compilation_budget()
        compiles = 0
        if plan.pipeline is not None:
            memo = self.cache.component_memo()

            def warm_component(key) -> bool:
                try:
                    return compile_component(key, memo, budget=budget)
                except Exception:
                    # The owning representative retries inline below
                    # and reports the real failure.
                    return False

            keys = [component.key for component in plan.pipeline.components]
            jobs_width = self.options.compile_jobs or 1
            if jobs_width > 1 and len(keys) > 1:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(
                    max_workers=min(jobs_width, len(keys))
                ) as pool:
                    compiles = sum(pool.map(warm_component, keys))
            else:
                compiles = sum(warm_component(key) for key in keys)
        completed = failed = 0
        for job in plan.warm_wave:
            handle = job.options.artifacts
            try:
                if self.options.mode == "derivative":
                    handle.tape(budget=budget, jobs=self.options.compile_jobs)
                else:
                    handle.ddnnf(budget=budget, jobs=self.options.compile_jobs)
                completed += 1
            except Exception:
                failed += 1
        if plan.pipeline is not None:
            self.cache.record_pipeline(compiles=compiles)
        return {"shapes": plan.n_shapes, "queued": len(plan.warm_wave),
                "completed": completed, "failed": failed, "pending": 0,
                "component_tasks": component_tasks}

    def _component_planner(self, executor: str):
        """The pipeline's component planner, or ``None`` when this
        batch must run the classic warm-wave-barrier schedule.

        Pipelining is on for cache-using engines unless the session
        disabled it (``options.pipeline_execution``); the ``"process"``
        executor additionally needs a persistent store — without one,
        pool workers could not see the parent's compiled components.
        Warm batches cost nothing extra: the planner probes each
        shape's artifacts and a batch with no cold shape gets
        ``plan.pipeline = None``.
        """
        if not self.engine.uses_cache:
            return None
        if not self.options.pipeline_execution:
            return None
        if executor == "process" and self.cache.store is None:
            return None
        kind = "tape" if self.options.mode == "derivative" else "dnnf"
        return artifact_component_planner(kind)

    def _build_jobs(
        self, query: QueryLike, answers: Sequence[tuple] | None
    ) -> list[Job]:
        """One :class:`Job` per requested answer: lineage circuit,
        canonicalization handle, and per-answer options."""
        result = lineage(
            to_plan(query, self.database), self.database, endogenous_only=True
        )
        available = result.tuples()
        if answers is None:
            answers = available
        else:
            known = set(available)
            for answer in answers:
                if answer not in known:
                    raise ValueError(f"{answer!r} is not an answer of the query")

        uses_cache = self.engine.uses_cache
        jobs: list[Job] = []
        for index, answer in enumerate(answers):
            circuit = result.lineage_of(answer)
            options = self.options
            if options.seed is not None:
                options = options.with_(
                    seed=derive_answer_seed(options.seed, answer)
                )
            if uses_cache:
                # One canonicalization pass per answer: the handle both
                # keys the dedup groups in the plan and rides into the
                # engine through options.artifacts, so explain_circuit
                # never recomputes the signature.
                handle = self.cache.open(circuit)
                options = options.with_(artifacts=handle)
                players = sorted(handle.labels)
                signature = handle.signature
            else:
                players = sorted(circuit.reachable_vars())
                signature = None
            jobs.append(
                Job(index, answer, circuit, players, options, signature)
            )
        return jobs

    # ------------------------------------------------------------------

    @property
    def stats(self) -> dict[str, int]:
        """Session counters merged with both cache tiers' stats.

        ``compile_calls`` vs ``answers_explained`` is the headline
        number: with repeated lineage shapes it is strictly smaller.
        ``fastpath_hits`` / ``fastpath_fallbacks`` count machine-width
        derivative passes vs. per-shape exact fallbacks (int64/auto
        backends), with the fallbacks split by reason under
        ``fastpath_overflow_fallbacks`` (runtime sentinel tripped),
        ``fastpath_ineligible_fallbacks`` (bounds/structure) and
        ``fastpath_budget_fallbacks`` (SoA memory budget);
        ``batched_groups`` / ``batched_answers`` count same-shape
        groups executed as one batched machine-width pass and the
        answers they covered.  The ``shapley_coefficients_cache_*``
        keys expose the bounded Equation-3 weight cache.  With a persistent store
        attached, ``store_*`` counters report the disk tier.  Pool
        workers of the ``"process"`` executor keep
        their own local counters (only their artifact *files* are
        shared); socket workers *do* report back — the coordinator's
        per-batch aggregate appears under ``remote_*`` keys, cumulative
        since each worker started.
        """
        merged = {
            "answers_explained": self._answers_explained,
            "unique_shapes": self._unique_shapes,
            **self.cache.stats_dict(),
            **coefficients_cache_info(),
        }
        if self._socket_batches:
            merged["remote_workers"] = self._remote_workers
            for key, value in self._remote_stats.items():
                merged[f"remote_{key}"] = value
        # Client-side resilience counters (retries, busy_rejections,
        # degraded_batches, pool_restarts) live on the transports;
        # cumulative over the session like everything else here.
        for transport in self._transports.values():
            for key, value in transport.service_stats.items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExplainSession(method={self.engine.name!r}, "
            f"answers={self._answers_explained}, cache={self.cache!r})"
        )
