"""Wire protocol of the socket transport: length-prefixed pickles.

Every message is one Python object (a dict with an ``"op"`` key),
pickled and prefixed with its 8-byte big-endian length.  Pickle keeps
circuits, options, and :class:`~fractions.Fraction`-valued results
byte-faithful with zero translation code — at the usual price: **the
coordinator port must only be reachable by trusted peers** (pickle
deserialization executes code; this is an intra-cluster protocol, not
an internet-facing one).  The README's shard-service section repeats
this warning where operators will read it.

Message vocabulary
------------------
Peers introduce themselves with ``{"op": "hello", "role": ...}``
(``"worker"`` or ``"client"``).  Workers then answer ``task`` /
``task_group`` / ``compile`` / ``warm`` / ``ping`` / ``stats`` /
``shutdown`` requests; clients send ``batch`` / ``ping`` / ``warm`` /
``warm_status`` / ``shutdown`` and read a single reply per request
(``busy`` is a possible reply when the coordinator's admission queue
is full).

Resilience hooks
----------------
``send_msg``/``recv_msg`` accept a per-op ``timeout`` (a deadline on
the whole framed write/read; expiry raises :class:`DeadlineExceeded`,
after which the stream is desynchronized and the connection must be
abandoned) and an optional
:class:`~repro.engine.service.faults.FaultPlan` + ``role`` pair, the
deterministic fault-injection seam the chaos tests drive.  Connections
are created with ``SO_KEEPALIVE`` so half-dead links are eventually
torn down by the kernel even when the application is idle.
"""

from __future__ import annotations

import pickle
import socket
import struct
import time
from contextlib import contextmanager

from .faults import Backoff, FaultPlan, FaultRule

#: 8-byte big-endian frame length prefix.
_HEADER = struct.Struct(">Q")

#: Refuse absurd frames (a corrupted prefix would otherwise make the
#: reader try to allocate petabytes).
MAX_FRAME_BYTES = 1 << 32


class ProtocolError(RuntimeError):
    """The peer sent a malformed or oversized frame."""


class DeadlineExceeded(ProtocolError):
    """A framed send/recv did not complete within its per-op deadline.

    The stream may be mid-frame afterwards — callers must treat the
    connection as dead (the peer did not fail, the *link* did)."""


@contextmanager
def _deadline(sock: socket.socket, timeout: float | None, what: str):
    """Apply a temporary socket timeout around one framed operation."""
    if timeout is None:
        yield
        return
    try:
        previous = sock.gettimeout()
        sock.settimeout(timeout)
    except OSError:
        yield  # socket already dead: let the operation raise its own
        return
    try:
        yield
    except (socket.timeout, TimeoutError) as error:
        raise DeadlineExceeded(
            f"{what} deadline of {timeout}s exceeded"
        ) from error
    finally:
        try:
            sock.settimeout(previous)
        except OSError:
            pass


def _inject_send(
    sock: socket.socket, faults: FaultPlan | None, role: str,
    message: object, data: bytes,
) -> bytes | None:
    """Apply any scheduled send-side fault; returns the (possibly
    corrupted) payload, or ``None`` when the message must be dropped."""
    if faults is None:
        return data
    rule = faults.decide(role, "send", message)
    if rule is None:
        return data
    if rule.action == "drop":
        return None
    if rule.action == "delay":
        time.sleep(rule.seconds)
        return data
    if rule.action == "corrupt":
        return b"\x00" * len(data)  # same length, undecodable payload
    # "close": the injected process death / partition.
    _abandon(sock)
    raise ConnectionError(f"fault injected: connection closed ({role} send)")


def _abandon(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def send_msg(
    sock: socket.socket,
    message: object,
    timeout: float | None = None,
    faults: FaultPlan | None = None,
    role: str = "",
) -> None:
    """Serialize ``message`` and write one framed message."""
    data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    data = _inject_send(sock, faults, role, message, data)
    if data is None:
        return  # injected drop: the message never existed
    with _deadline(sock, timeout, "send"):
        sock.sendall(_HEADER.pack(len(data)) + data)


def recv_msg(
    sock: socket.socket,
    timeout: float | None = None,
    faults: FaultPlan | None = None,
    role: str = "",
) -> object | None:
    """Read one framed message; ``None`` on clean EOF at a frame
    boundary (the peer closed the connection).

    ``timeout`` bounds the whole framed read.  Undecodable payloads
    (truncated pickles, corrupted frames) raise :class:`ProtocolError`
    rather than leaking pickle internals to callers.
    """
    while True:
        with _deadline(sock, timeout, "recv"):
            header = _recv_exact(sock, _HEADER.size, eof_ok=True)
            if header is None:
                return None
            (length,) = _HEADER.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame of {length} bytes exceeds the limit"
                )
            data = _recv_exact(sock, length, eof_ok=False)
        try:
            message = pickle.loads(data)
        except Exception as error:
            raise ProtocolError(f"undecodable frame: {error}") from error
        if faults is None:
            return message
        rule = faults.decide(role, "recv", message)
        if rule is None:
            return message
        if rule.action == "drop":
            continue  # the message is lost; block on the next frame
        if rule.action == "delay":
            time.sleep(rule.seconds)
            return message
        if rule.action == "corrupt":
            raise ProtocolError(
                f"undecodable frame: fault injected ({role} recv)"
            )
        _abandon(sock)
        raise ConnectionError(
            f"fault injected: connection closed ({role} recv)"
        )


def _recv_exact(sock: socket.socket, n: int, eof_ok: bool) -> bytes | None:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def parse_address(text: str | tuple) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (tuples pass through)."""
    if isinstance(text, tuple):
        host, port = text
        return str(host), int(port)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {text!r} is not of the form host:port")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"address {text!r} has a non-numeric port") from None


def format_address(address: tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"


def enable_keepalive(sock: socket.socket) -> None:
    """Turn on ``SO_KEEPALIVE`` (best-effort) so half-open links are
    eventually detected by the kernel even while the peer is idle."""
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    except OSError:
        pass  # exotic socket types (tests' socketpairs) may refuse


def connect(
    address: str | tuple[str, int],
    timeout: float = 10.0,
    retry_for: float = 0.0,
    backoff: Backoff | None = None,
) -> socket.socket:
    """TCP-connect to ``address``, optionally retrying for up to
    ``retry_for`` seconds with jittered exponential backoff (workers
    and CI scripts start before the coordinator finishes binding; the
    backoff absorbs that without hammering the listen queue the way
    the old fixed-interval spin did).

    The raised error reports how many attempts were made.  The
    returned socket has ``SO_KEEPALIVE`` enabled and no timeout set —
    per-op deadlines come from :func:`send_msg` / :func:`recv_msg`.
    """
    address = parse_address(address)
    if backoff is None:
        backoff = Backoff(initial=0.05, maximum=1.0, seed=0)
    deadline = time.monotonic() + retry_for
    attempts = 0
    while True:
        attempts += 1
        try:
            sock = socket.create_connection(address, timeout=timeout)
            enable_keepalive(sock)
            sock.settimeout(None)  # per-op deadlines are set per call
            return sock
        except OSError as error:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ConnectionError(
                    f"cannot connect to {format_address(address)} after "
                    f"{attempts} attempt(s): {error}"
                ) from error
            backoff.sleep(attempts - 1, budget=remaining)


__all__ = [
    "Backoff", "DeadlineExceeded", "FaultPlan", "FaultRule",
    "MAX_FRAME_BYTES", "ProtocolError", "connect", "enable_keepalive",
    "format_address", "parse_address", "recv_msg", "send_msg",
]
