"""Wire protocol of the socket transport: length-prefixed pickles.

Every message is one Python object (a dict with an ``"op"`` key),
pickled and prefixed with its 8-byte big-endian length.  Pickle keeps
circuits, options, and :class:`~fractions.Fraction`-valued results
byte-faithful with zero translation code — at the usual price: **the
coordinator port must only be reachable by trusted peers** (pickle
deserialization executes code; this is an intra-cluster protocol, not
an internet-facing one).  The README's shard-service section repeats
this warning where operators will read it.

Message vocabulary
------------------
Peers introduce themselves with ``{"op": "hello", "role": ...}``
(``"worker"`` or ``"client"``).  Workers then answer ``task`` /
``stats`` / ``shutdown`` requests; clients send ``batch`` / ``ping`` /
``shutdown`` and read a single reply per request.
"""

from __future__ import annotations

import pickle
import socket
import struct
import time

#: 8-byte big-endian frame length prefix.
_HEADER = struct.Struct(">Q")

#: Refuse absurd frames (a corrupted prefix would otherwise make the
#: reader try to allocate petabytes).
MAX_FRAME_BYTES = 1 << 32


class ProtocolError(RuntimeError):
    """The peer sent a malformed or oversized frame."""


def send_msg(sock: socket.socket, message: object) -> None:
    """Serialize ``message`` and write one framed message."""
    data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(data)) + data)


def recv_msg(sock: socket.socket) -> object | None:
    """Read one framed message; ``None`` on clean EOF at a frame
    boundary (the peer closed the connection)."""
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the limit")
    data = _recv_exact(sock, length, eof_ok=False)
    return pickle.loads(data)


def _recv_exact(sock: socket.socket, n: int, eof_ok: bool) -> bytes | None:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def parse_address(text: str | tuple) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (tuples pass through)."""
    if isinstance(text, tuple):
        host, port = text
        return str(host), int(port)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {text!r} is not of the form host:port")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"address {text!r} has a non-numeric port") from None


def format_address(address: tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"


def connect(
    address: str | tuple[str, int],
    timeout: float = 10.0,
    retry_for: float = 0.0,
) -> socket.socket:
    """TCP-connect to ``address``, optionally retrying for up to
    ``retry_for`` seconds (workers and CI scripts start before the
    coordinator finishes binding; a brief retry loop absorbs that)."""
    address = parse_address(address)
    deadline = time.monotonic() + retry_for
    while True:
        try:
            sock = socket.create_connection(address, timeout=timeout)
            sock.settimeout(None)  # task execution has its own budget
            return sock
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)
