"""The client-side socket transport: ship a batch to a coordinator.

:class:`SocketTransport` is what an
:class:`~repro.engine.session.ExplainSession` constructed with
``executor="socket"`` talks through.  The whole plan goes over the wire
(jobs made portable: handles stripped, signatures digested) and the
coordinator does the placement — the session never compiles locally,
so a client on a laptop can drive a fleet of workers that share a
store on the far side.

Robustness: every roundtrip carries per-leg deadlines (a hung
coordinator raises instead of blocking forever), idempotent ops
(``ping``/``warm_status``) retry with jittered exponential backoff,
and batches are keyed by a client-generated ``batch_id`` so a
resubmission after a lost reply is answered from the coordinator's
dedupe cache instead of re-running the work.  ``busy`` rejections from
admission control back off and retry; an unreachable fleet either
raises :class:`~.base.FleetUnavailable` or — with ``degrade="local"``
— falls back to an in-process execution of the same plan, producing
byte-identical Fractions (counted in ``service_stats`` and warned
about, because latency just changed class).
"""

from __future__ import annotations

import itertools
import os
import time
import warnings

from ..base import EngineResult
from ..scheduler import BatchPlan, Job
from .base import FleetBusy, FleetUnavailable, Transport, TransportError
from .faults import Backoff, FaultPlan
from .protocol import (
    ProtocolError,
    connect,
    parse_address,
    recv_msg,
    send_msg,
)


def _task_payload(job: Job) -> dict:
    """The wire form of one job (portable: handles stripped, signature
    digested)."""
    portable = job.portable()
    return {
        "id": portable.index,
        "circuit": portable.circuit,
        "players": portable.players,
        "options": portable.options,
        "affinity": portable.affinity(),
    }


def _pipeline_payload(plan: BatchPlan) -> dict | None:
    """The wire form of the compile/execute pipeline DAG, or ``None``
    for the classic warm-wave-barrier schedule.  Only plain data
    crosses the wire: canonical component keys (tuples of literal
    tuples), cost estimates, and affinity digests — never the
    process-local cost model."""
    pipeline = plan.pipeline
    if pipeline is None:
        return None
    budget = (
        plan.warm_wave[0].options.compilation_budget()
        if plan.warm_wave else None
    )
    return {
        "components": [
            {"key": component.key, "cost": component.cost,
             "shapes": list(component.shapes)}
            for component in pipeline.components
        ],
        "needs": {
            affinity: list(indexes)
            for affinity, indexes in pipeline.needs.items()
        },
        "budget": budget,
    }


class SocketTransport(Transport):
    """Submits batches to a :class:`~.coordinator.Coordinator`.

    ``min_workers`` makes the coordinator hold the batch until that
    many workers registered (bounded by ``wait_timeout``) — the knob CI
    and cold-started fleets use instead of sleeping.  One connection is
    opened per batch; the coordinator and its workers are the long-
    lived parts of this transport.

    ``op_timeout`` bounds each control-op leg and ``batch_timeout``
    the batch-reply wait; ``retries`` bounds how often a failed or
    rejected exchange is retried (with jittered backoff);
    ``degrade="local"`` turns a persistently unreachable fleet into an
    in-process fallback instead of an error.
    """

    kind = "socket"

    def __init__(
        self,
        address: str | tuple[str, int],
        min_workers: int | None = None,
        wait_timeout: float = 60.0,
        connect_retry_for: float = 10.0,
        op_timeout: float | None = 30.0,
        batch_timeout: float | None = 600.0,
        retries: int = 2,
        degrade: str | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        super().__init__()
        self.address = parse_address(address)
        self.min_workers = min_workers
        self.wait_timeout = wait_timeout
        self.connect_retry_for = connect_retry_for
        self.op_timeout = op_timeout
        self.batch_timeout = batch_timeout
        self.retries = max(0, int(retries))
        if degrade not in (None, "local"):
            raise ValueError(f"unknown degrade policy {degrade!r}")
        self.degrade = degrade
        self._faults = faults
        self._backoff = Backoff(initial=0.05, maximum=2.0, seed=0)
        # Client-generated batch ids: unique per (process, transport,
        # sequence) without any randomness — resubmissions reuse the
        # id, which is the whole point.
        self._batch_seq = itertools.count()
        self._fallback: Transport | None = None
        #: Worker count that served the last batch.
        self.remote_workers = 0

    # ------------------------------------------------------------------
    # Roundtrips
    # ------------------------------------------------------------------

    def _roundtrip(self, message: dict, timeout: float | None = None) -> dict:
        """One hello + request + reply exchange with the coordinator.

        ``timeout`` bounds the reply wait (defaults to ``op_timeout``);
        the hello/request legs always use ``op_timeout``.  Any link
        failure — connect refused, deadline, truncated or corrupt frame
        — is normalized to :class:`FleetUnavailable`; an admission
        rejection to :class:`FleetBusy`.  Both are retryable and both
        subclass :class:`~.base.TransportError`."""
        if timeout is None:
            timeout = self.op_timeout
        try:
            sock = connect(self.address, retry_for=self.connect_retry_for)
        except OSError as error:
            raise FleetUnavailable(
                f"cannot reach coordinator at "
                f"{self.address[0]}:{self.address[1]}: {error}"
            ) from error
        try:
            try:
                send_msg(sock, {"op": "hello", "role": "client"},
                         timeout=self.op_timeout,
                         faults=self._faults, role="client")
                send_msg(sock, message, timeout=self.op_timeout,
                         faults=self._faults, role="client")
                reply = recv_msg(sock, timeout=timeout,
                                 faults=self._faults, role="client")
            except (ProtocolError, OSError) as error:
                raise FleetUnavailable(
                    f"coordinator link failed: {error}"
                ) from error
        finally:
            sock.close()
        if reply is None:
            raise FleetUnavailable(
                "coordinator closed the connection mid-request"
            )
        if isinstance(reply, dict) and reply.get("op") == "busy":
            raise FleetBusy(reply.get("message", "coordinator busy"))
        return reply

    def _retrying(self, message: dict, timeout: float | None = None) -> dict:
        """A :meth:`_roundtrip` with bounded retry + backoff — only for
        idempotent control ops (``ping``, ``warm_status``)."""
        attempt = 0
        while True:
            try:
                return self._roundtrip(message, timeout=timeout)
            except (FleetUnavailable, FleetBusy) as error:
                if isinstance(error, FleetBusy):
                    self._count("busy_rejections")
                if attempt >= self.retries:
                    raise
                attempt += 1
                self._count("retries")
                self._backoff.sleep(attempt - 1)

    # ------------------------------------------------------------------
    # Batches
    # ------------------------------------------------------------------

    def run_batch(self, plan: BatchPlan) -> dict[int, EngineResult]:
        # answer order: group representatives first
        tasks = [_task_payload(job) for job in plan.jobs]
        batch_id = f"{os.getpid():x}-{id(self):x}-{next(self._batch_seq)}"
        payload = {
            "op": "batch",
            "engine": plan.engine,
            "tasks": tasks,
            "min_workers": self.min_workers,
            "wait_timeout": self.wait_timeout,
            # Batched plans let workers execute a same-shape run as one
            # task_group call instead of one round-trip per answer.
            "batched": plan.batched,
            # Pipelined plans replace the coordinator's two-phase
            # warm-then-main schedule with interleaved compile /
            # stitch / task_group ops per worker.
            "pipeline": _pipeline_payload(plan),
            # Dedupe key: a resubmission after a lost reply is served
            # from the coordinator's cache instead of re-running.
            "batch_id": batch_id,
        }
        attempt = 0
        while True:
            try:
                reply = self._roundtrip(payload, timeout=self.batch_timeout)
                break
            except FleetBusy:
                self._count("busy_rejections")
                if attempt >= self.retries:
                    raise
                attempt += 1
                self._count("retries")
                self._backoff.sleep(attempt - 1)
            except FleetUnavailable:
                if attempt >= self.retries:
                    if self.degrade == "local":
                        return self._run_degraded(plan)
                    raise
                attempt += 1
                self._count("retries")
                self._backoff.sleep(attempt - 1)
        if reply.get("op") != "results":
            raise TransportError(
                reply.get("message", f"unexpected reply {reply!r}")
            )
        # Cumulative since each worker started (workers outlive batches
        # by design); the session surfaces them under remote_* keys.
        self.remote_stats = dict(reply.get("worker_stats", {}))
        self.remote_workers = int(reply.get("workers", 0))
        # Calibrate the session's compile cost model with the fleet's
        # measured component-compile timings, so the next cold batch is
        # scheduled critical-path-first with learned estimates.
        pipeline = plan.pipeline
        if pipeline is not None and pipeline.cost_model is not None:
            for index, seconds in reply.get("component_timings", ()):
                if 0 <= index < len(pipeline.components):
                    pipeline.cost_model.observe(
                        pipeline.components[index].key, seconds
                    )
        return dict(reply["results"])

    def _run_degraded(self, plan: BatchPlan) -> dict[int, EngineResult]:
        """Graceful degradation: run the plan in-process.

        Same plan, same engines, same caches — so the Fractions are
        byte-identical to what the fleet would have returned; only the
        latency class changed, which is why this warns and counts."""
        warnings.warn(
            f"coordinator at {self.address[0]}:{self.address[1]} is "
            f"unreachable; degrading batch to in-process execution",
            RuntimeWarning,
            stacklevel=3,
        )
        self._count("degraded_batches")
        if self._fallback is None:
            from .local import InProcessTransport

            self._fallback = InProcessTransport()
        return self._fallback.run_batch(plan)

    def ping(self) -> int:
        """Worker count currently registered at the coordinator."""
        reply = self._retrying({"op": "ping"})
        if not isinstance(reply, dict) or reply.get("op") != "pong":
            raise TransportError(f"unexpected ping reply {reply!r}")
        return int(reply["workers"])

    def close(self) -> None:
        fallback, self._fallback = self._fallback, None
        if fallback is not None:
            fallback.close()

    # ------------------------------------------------------------------
    # Compile-ahead
    # ------------------------------------------------------------------

    def warm_batch(self, plan: BatchPlan) -> int:
        """Queue the plan's warm wave on the coordinator's compile-ahead
        queue (one representative per distinct shape) and return the
        number of tasks queued.  Fire-and-forget: workers compile the
        shapes into the fleet's shared store off the request path; poll
        :meth:`warm_status` or block on :meth:`wait_warm` to observe the
        drain.

        A pipelined plan additionally queues its fleet-deduplicated
        component compiles *ahead* of the representatives, so shared
        components compile exactly once across the fleet instead of
        redundantly inside every concurrently-warming representative;
        the returned count still covers representatives only.

        Not retried: a duplicate enqueue would duplicate compile work,
        which is exactly what warming tries to avoid."""
        tasks = [_task_payload(job) for job in plan.warm_wave]
        if not tasks:
            return 0
        pipeline = _pipeline_payload(plan)
        components = []
        if pipeline is not None:
            components = [
                {
                    "id": f"component:{index}",
                    "key": component["key"],
                    # Place each compile where its first owning shape's
                    # representative will land, so that worker stitches
                    # from its own memory.
                    "affinity": (component["shapes"][0]
                                 if component["shapes"] else f"c{index}"),
                    "budget": pipeline["budget"],
                }
                for index, component in enumerate(pipeline["components"])
            ]
        reply = self._roundtrip({
            "op": "warm", "engine": plan.engine, "tasks": tasks,
            "components": components,
        })
        if reply.get("op") != "queued":
            raise TransportError(
                reply.get("message", f"unexpected warm reply {reply!r}")
            )
        return int(reply["queued"])

    def warm_status(self) -> dict[str, int]:
        """Snapshot of the coordinator's compile-ahead queue."""
        reply = self._retrying({"op": "warm_status"})
        if reply.get("op") != "warm_status":
            raise TransportError(
                reply.get("message", f"unexpected warm_status reply {reply!r}")
            )
        return {k: v for k, v in reply.items() if k != "op"}

    def wait_warm(
        self, timeout: float = 60.0, poll: float = 0.05
    ) -> dict[str, int]:
        """Block until the compile-ahead queue drains (or ``timeout``
        passes); returns the final :meth:`warm_status` snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.warm_status()
            if status.get("pending", 0) == 0 or time.monotonic() >= deadline:
                return status
            time.sleep(poll)
