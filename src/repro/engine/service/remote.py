"""The client-side socket transport: ship a batch to a coordinator.

:class:`SocketTransport` is what an
:class:`~repro.engine.session.ExplainSession` constructed with
``executor="socket"`` talks through.  The whole plan goes over the wire
(jobs made portable: handles stripped, signatures digested) and the
coordinator does the placement — the session never compiles locally,
so a client on a laptop can drive a fleet of workers that share a
store on the far side.
"""

from __future__ import annotations

import time

from ..base import EngineResult
from ..scheduler import BatchPlan, Job
from .base import Transport, TransportError
from .protocol import connect, parse_address, recv_msg, send_msg


def _task_payload(job: Job) -> dict:
    """The wire form of one job (portable: handles stripped, signature
    digested)."""
    portable = job.portable()
    return {
        "id": portable.index,
        "circuit": portable.circuit,
        "players": portable.players,
        "options": portable.options,
        "affinity": portable.affinity(),
    }


def _pipeline_payload(plan: BatchPlan) -> dict | None:
    """The wire form of the compile/execute pipeline DAG, or ``None``
    for the classic warm-wave-barrier schedule.  Only plain data
    crosses the wire: canonical component keys (tuples of literal
    tuples), cost estimates, and affinity digests — never the
    process-local cost model."""
    pipeline = plan.pipeline
    if pipeline is None:
        return None
    budget = (
        plan.warm_wave[0].options.compilation_budget()
        if plan.warm_wave else None
    )
    return {
        "components": [
            {"key": component.key, "cost": component.cost,
             "shapes": list(component.shapes)}
            for component in pipeline.components
        ],
        "needs": {
            affinity: list(indexes)
            for affinity, indexes in pipeline.needs.items()
        },
        "budget": budget,
    }


class SocketTransport(Transport):
    """Submits batches to a :class:`~.coordinator.Coordinator`.

    ``min_workers`` makes the coordinator hold the batch until that
    many workers registered (bounded by ``wait_timeout``) — the knob CI
    and cold-started fleets use instead of sleeping.  One connection is
    opened per batch; the coordinator and its workers are the long-
    lived parts of this transport.
    """

    kind = "socket"

    def __init__(
        self,
        address: str | tuple[str, int],
        min_workers: int | None = None,
        wait_timeout: float = 60.0,
        connect_retry_for: float = 10.0,
    ) -> None:
        super().__init__()
        self.address = parse_address(address)
        self.min_workers = min_workers
        self.wait_timeout = wait_timeout
        self.connect_retry_for = connect_retry_for
        #: Worker count that served the last batch.
        self.remote_workers = 0

    def _roundtrip(self, message: dict) -> dict:
        """One hello + request + reply exchange with the coordinator."""
        try:
            sock = connect(self.address, retry_for=self.connect_retry_for)
        except OSError as error:
            raise TransportError(
                f"cannot reach coordinator at "
                f"{self.address[0]}:{self.address[1]}: {error}"
            ) from error
        try:
            send_msg(sock, {"op": "hello", "role": "client"})
            send_msg(sock, message)
            reply = recv_msg(sock)
        finally:
            sock.close()
        if reply is None:
            raise TransportError("coordinator closed the connection mid-request")
        return reply

    def run_batch(self, plan: BatchPlan) -> dict[int, EngineResult]:
        # answer order: group representatives first
        tasks = [_task_payload(job) for job in plan.jobs]
        reply = self._roundtrip({
            "op": "batch",
            "engine": plan.engine,
            "tasks": tasks,
            "min_workers": self.min_workers,
            "wait_timeout": self.wait_timeout,
            # Batched plans let workers execute a same-shape run as one
            # task_group call instead of one round-trip per answer.
            "batched": plan.batched,
            # Pipelined plans replace the coordinator's two-phase
            # warm-then-main schedule with interleaved compile /
            # stitch / task_group ops per worker.
            "pipeline": _pipeline_payload(plan),
        })
        if reply.get("op") != "results":
            raise TransportError(
                reply.get("message", f"unexpected reply {reply!r}")
            )
        # Cumulative since each worker started (workers outlive batches
        # by design); the session surfaces them under remote_* keys.
        self.remote_stats = dict(reply.get("worker_stats", {}))
        self.remote_workers = int(reply.get("workers", 0))
        # Calibrate the session's compile cost model with the fleet's
        # measured component-compile timings, so the next cold batch is
        # scheduled critical-path-first with learned estimates.
        pipeline = plan.pipeline
        if pipeline is not None and pipeline.cost_model is not None:
            for index, seconds in reply.get("component_timings", ()):
                if 0 <= index < len(pipeline.components):
                    pipeline.cost_model.observe(
                        pipeline.components[index].key, seconds
                    )
        return dict(reply["results"])

    def ping(self) -> int:
        """Worker count currently registered at the coordinator."""
        reply = self._roundtrip({"op": "ping"})
        if not isinstance(reply, dict) or reply.get("op") != "pong":
            raise TransportError(f"unexpected ping reply {reply!r}")
        return int(reply["workers"])

    # ------------------------------------------------------------------
    # Compile-ahead
    # ------------------------------------------------------------------

    def warm_batch(self, plan: BatchPlan) -> int:
        """Queue the plan's warm wave on the coordinator's compile-ahead
        queue (one representative per distinct shape) and return the
        number of tasks queued.  Fire-and-forget: workers compile the
        shapes into the fleet's shared store off the request path; poll
        :meth:`warm_status` or block on :meth:`wait_warm` to observe the
        drain.

        A pipelined plan additionally queues its fleet-deduplicated
        component compiles *ahead* of the representatives, so shared
        components compile exactly once across the fleet instead of
        redundantly inside every concurrently-warming representative;
        the returned count still covers representatives only."""
        tasks = [_task_payload(job) for job in plan.warm_wave]
        if not tasks:
            return 0
        pipeline = _pipeline_payload(plan)
        components = []
        if pipeline is not None:
            components = [
                {
                    "id": f"component:{index}",
                    "key": component["key"],
                    # Place each compile where its first owning shape's
                    # representative will land, so that worker stitches
                    # from its own memory.
                    "affinity": (component["shapes"][0]
                                 if component["shapes"] else f"c{index}"),
                    "budget": pipeline["budget"],
                }
                for index, component in enumerate(pipeline["components"])
            ]
        reply = self._roundtrip({
            "op": "warm", "engine": plan.engine, "tasks": tasks,
            "components": components,
        })
        if reply.get("op") != "queued":
            raise TransportError(
                reply.get("message", f"unexpected warm reply {reply!r}")
            )
        return int(reply["queued"])

    def warm_status(self) -> dict[str, int]:
        """Snapshot of the coordinator's compile-ahead queue."""
        reply = self._roundtrip({"op": "warm_status"})
        if reply.get("op") != "warm_status":
            raise TransportError(
                reply.get("message", f"unexpected warm_status reply {reply!r}")
            )
        return {k: v for k, v in reply.items() if k != "op"}

    def wait_warm(
        self, timeout: float = 60.0, poll: float = 0.05
    ) -> dict[str, int]:
        """Block until the compile-ahead queue drains (or ``timeout``
        passes); returns the final :meth:`warm_status` snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.warm_status()
            if status.get("pending", 0) == 0 or time.monotonic() >= deadline:
                return status
            time.sleep(poll)
