"""Local transports: a shared thread pool and a persistent process pool.

Both keep their executor alive across batches (created lazily on the
first batch, released by :meth:`close`), which removes the per-call
pool start-up and — for processes — keeps each worker's per-process
artifact cache warm between ``explain_many`` calls.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from ...circuits.circuit import Circuit
from ...compiler.knowledge import compile_component
from ..base import EngineOptions, EngineResult
from ..cache import ArtifactCache
from ..registry import get_engine
from ..scheduler import BatchPlan, Job
from ..store import PersistentArtifactStore
from .base import Transport
from .pipeline import PipelineOutcome, run_pipelined, timed_compile

#: Per-process artifact cache of pool workers, keyed by store directory
#: (None = no persistent store).  Lives for the worker's lifetime so
#: repeated tasks in one worker also get in-memory hits.
_WORKER_CACHES: dict[str | None, ArtifactCache] = {}


def _worker_cache(store_dir: str | None) -> ArtifactCache:
    cache = _WORKER_CACHES.get(store_dir)
    if cache is None:
        store = PersistentArtifactStore(store_dir) if store_dir else None
        cache = ArtifactCache(store=store)
        _WORKER_CACHES[store_dir] = cache
    return cache


def _process_explain(
    engine_name: str,
    circuit: Circuit,
    players: list,
    options: EngineOptions,
    store_dir: str | None,
) -> EngineResult:
    """Top-level body of one :class:`ProcessPoolTransport` task.

    Runs in a pool worker: rebuilds a per-process cache over the shared
    store directory (cache handles are not picklable, so the parent
    ships only the directory path) and dispatches through the registry.
    """
    cache = _worker_cache(store_dir)
    options = options.with_(cache=cache)
    return get_engine(engine_name).explain_circuit(circuit, players, options)


def _process_explain_group(
    engine_name: str,
    requests: list[tuple[Circuit, list, EngineOptions]],
    store_dir: str | None,
) -> list[EngineResult]:
    """Top-level body of one batched :class:`ProcessPoolTransport` task.

    The whole same-shape group runs in one pool worker through the
    engine's ``explain_batch`` — one batched machine-width pass instead
    of one task round-trip per answer."""
    cache = _worker_cache(store_dir)
    prepared = [
        (circuit, players, options.with_(cache=cache))
        for circuit, players, options in requests
    ]
    return get_engine(engine_name).explain_batch(prepared)


def _process_compile_component(
    key, store_dir: str | None, budget
) -> tuple[bool, float]:
    """Top-level body of one pipelined component-compile task.

    Runs in a pool worker over the shared store: a published component
    lands in the ``.comp`` store tier, where every other worker's (and
    the parent's) stitch jobs find it.  Returns ``(compiled,
    seconds)``."""
    cache = _worker_cache(store_dir)
    return timed_compile(
        lambda: compile_component(key, cache.component_memo(), budget=budget)
    )


def _explain_group(engine, jobs: list[Job]) -> list[EngineResult]:
    """In-process body of one batched group: engine.explain_batch over
    the group's jobs, results in job order."""
    return engine.explain_batch(
        [(job.circuit, job.players, job.options) for job in jobs]
    )


def _plan_cache(plan: BatchPlan) -> ArtifactCache | None:
    """The session cache a plan's jobs report through, if any."""
    for job in plan.jobs:
        handle = job.options.artifacts
        if handle is not None:
            return handle.cache
        if job.options.cache is not None:
            return job.options.cache
    return None


def _record_pipeline(plan: BatchPlan, outcome: PipelineOutcome) -> None:
    cache = _plan_cache(plan)
    if cache is not None:
        cache.record_pipeline(
            overlap_seconds=outcome.overlap_seconds,
            compiles=outcome.compiles,
            stitches=outcome.stitches,
        )


def _collect(
    futures: dict[Future, Job], outcomes: dict[int, EngineResult]
) -> None:
    """Drain ``futures`` into ``outcomes``; on any failure cancel what
    has not started so an aborted batch never leaks queued work."""
    try:
        for future, job in futures.items():
            outcomes[job.index] = future.result()
    except BaseException:
        for future in futures:
            future.cancel()
        raise


def _collect_groups(
    futures: dict[Future, list[Job]], outcomes: dict[int, EngineResult]
) -> None:
    """Group-wise :func:`_collect`: each future yields one result per
    job of its group, in order."""
    try:
        for future, jobs in futures.items():
            for job, result in zip(jobs, future.result()):
                outcomes[job.index] = result
    except BaseException:
        for future in futures:
            future.cancel()
        raise


class InProcessTransport(Transport):
    """Thread-pool execution against the session's in-memory cache."""

    kind = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__()
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-explain",
            )
        return self._pool

    def run_batch(self, plan: BatchPlan) -> dict[int, EngineResult]:
        engine = get_engine(plan.engine)
        pool = self._ensure_pool()
        if plan.pipeline is not None:
            cache = _plan_cache(plan)
            if cache is not None:
                memo = cache.component_memo()
                budget = (
                    plan.warm_wave[0].options.compilation_budget()
                    if plan.warm_wave else None
                )
                outcome = run_pipelined(
                    plan,
                    submit_compile=lambda component: pool.submit(
                        timed_compile,
                        lambda key=component.key: compile_component(
                            key, memo, budget=budget
                        ),
                    ),
                    submit_job=lambda job: pool.submit(
                        engine.explain_circuit,
                        job.circuit, job.players, job.options,
                    ),
                    submit_group=lambda group: pool.submit(
                        _explain_group, engine, group
                    ),
                    # Leave one pool slot for execution-ready work so
                    # the compile backlog cannot monopolize the pool.
                    max_inflight_compiles=pool._max_workers - 1,
                )
                _record_pipeline(plan, outcome)
                return outcome.outcomes
        outcomes: dict[int, EngineResult] = {}
        # Warm wave first, then the rest: the barrier guarantees every
        # shape's representative populated the cache before its
        # siblings run as hits.
        futures = {
            pool.submit(
                engine.explain_circuit, job.circuit, job.players, job.options
            ): job
            for job in plan.warm_wave
        }
        _collect(futures, outcomes)
        if plan.batched:
            # One pool task per shape group: the engine executes the
            # whole group as a single batched pass.
            group_futures = {
                pool.submit(_explain_group, engine, group): group
                for group in plan.groups
            }
            _collect_groups(group_futures, outcomes)
            return outcomes
        futures = {
            pool.submit(
                engine.explain_circuit, job.circuit, job.players, job.options
            ): job
            for job in plan.main_wave
        }
        _collect(futures, outcomes)
        return outcomes

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)


class ProcessPoolTransport(Transport):
    """Persistent :class:`ProcessPoolExecutor` workers over a shared
    persistent store.

    The warm wave runs in the parent (with the session cache, so every
    distinct shape compiles exactly once and — when a store is attached
    — lands on disk before any worker asks for it); the main wave fans
    out to long-lived pool workers that rebuild a cache over the same
    store directory.  Without a store, workers compile independently —
    the pool then only pays off through in-worker shape reuse.
    """

    kind = "process"

    def __init__(
        self, max_workers: int | None = None, store_dir: str | None = None
    ) -> None:
        super().__init__()
        self.max_workers = max_workers
        self.store_dir = store_dir
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def run_batch(self, plan: BatchPlan) -> dict[int, EngineResult]:
        """One batch, resilient to a single pool death.

        A worker process dying (OOM kill, segfault in a native dep)
        poisons the whole executor; the inner handlers already drop the
        poisoned pool, so one retry re-runs the batch on a fresh pool —
        correct because jobs are pure reads over the shared store plus
        idempotent publishes.  A second death in the same batch
        propagates: that is a machine problem, not a transient."""
        try:
            return self._run_batch_once(plan)
        except BrokenProcessPool:
            self._count("pool_restarts")
            return self._run_batch_once(plan)

    def _run_batch_once(self, plan: BatchPlan) -> dict[int, EngineResult]:
        engine = get_engine(plan.engine)
        if plan.pipeline is not None and self.store_dir is not None:
            # Pipelined cold batch: component compiles, stitches, and
            # sibling groups all run in pool workers over the shared
            # store (the store is what propagates compiled artifacts
            # between workers, hence the store_dir guard above).
            pool = self._ensure_pool()
            budget = (
                plan.warm_wave[0].options.compilation_budget()
                if plan.warm_wave else None
            )

            def submit_job(job: Job) -> Future:
                portable = job.portable()
                return pool.submit(
                    _process_explain, plan.engine, portable.circuit,
                    portable.players, portable.options, self.store_dir,
                )

            def submit_group(group: list[Job]) -> Future:
                portables = [job.portable() for job in group]
                return pool.submit(
                    _process_explain_group, plan.engine,
                    [(p.circuit, p.players, p.options) for p in portables],
                    self.store_dir,
                )

            try:
                outcome = run_pipelined(
                    plan,
                    submit_compile=lambda component: pool.submit(
                        _process_compile_component, component.key,
                        self.store_dir, budget,
                    ),
                    submit_job=submit_job,
                    submit_group=submit_group,
                    # Leave one worker for execution-ready work so the
                    # compile backlog cannot monopolize the pool.
                    max_inflight_compiles=pool._max_workers - 1,
                )
            except BrokenProcessPool:
                self._pool = None
                raise
            _record_pipeline(plan, outcome)
            return outcome.outcomes
        outcomes: dict[int, EngineResult] = {}
        for job in plan.warm_wave:
            outcomes[job.index] = engine.explain_circuit(
                job.circuit, job.players, job.options
            )
        if not plan.main_wave:
            return outcomes
        pool = self._ensure_pool()
        try:
            if plan.batched:
                # One pool task per shape group: the worker process
                # runs the group as a single batched engine call.
                group_futures = {}
                for group in plan.groups:
                    portables = [job.portable() for job in group]
                    group_futures[
                        pool.submit(
                            _process_explain_group,
                            plan.engine,
                            [(p.circuit, p.players, p.options)
                             for p in portables],
                            self.store_dir,
                        )
                    ] = group
                _collect_groups(group_futures, outcomes)
                return outcomes
            futures = {}
            for job in plan.main_wave:
                portable = job.portable()
                futures[
                    pool.submit(
                        _process_explain,
                        plan.engine,
                        portable.circuit,
                        portable.players,
                        portable.options,
                        self.store_dir,
                    )
                ] = job
            _collect(futures, outcomes)
        except BrokenProcessPool:
            # A dead worker poisons the whole executor; drop it so the
            # next batch gets a fresh pool instead of failing forever.
            self._pool = None
            raise
        return outcomes

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
