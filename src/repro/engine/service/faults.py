"""Deterministic fault injection for the socket service.

Every failure mode the resilience layer must survive — dropped
messages, slow links, corrupted frames, connections dying at exactly
the wrong moment — is expressible as a :class:`FaultRule` and scheduled
by a :class:`FaultPlan` threaded through
:func:`~repro.engine.service.protocol.send_msg` /
:func:`~repro.engine.service.protocol.recv_msg`.  The coordinator,
worker loop, and client transport each accept a plan and tag their
traffic with a *role*, so a test can say "the worker's connection dies
on the 2nd ``task`` it receives" and get exactly that, every run,
without killing a real process.

Rules fire on the *Nth matching message* (per rule, counted inside the
plan, which makes firing deterministic under any thread interleaving:
the counter is guarded by one lock and each rule burns its matches in
arrival order).  Actions:

``drop``
    send: the message silently never goes out.  recv: the message is
    discarded and the reader blocks on the next frame (what a lossy
    network looks like from the application).
``delay``
    the message is held for ``seconds`` before proceeding — long enough
    to trip a peer's per-op deadline, short enough to test recovery.
``corrupt``
    send: the frame's payload is replaced with garbage of the same
    length (the peer sees an undecodable frame →
    :class:`~repro.engine.service.protocol.ProtocolError`).  recv: the
    reader raises the same error without delivering the message.
``close``
    the socket is shut down mid-conversation and a
    :class:`ConnectionError` is raised — the injected equivalent of a
    process death or network partition at that exact message.

This module also hosts :class:`Backoff`, the seeded jittered
exponential backoff schedule shared by ``protocol.connect``, worker
reconnection, and client retries — seeded so retry traces are
reproducible (and so the REP001 lint's no-unseeded-randomness rule
holds for the service layer too).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

#: Actions a rule may take on a matched message.
FAULT_ACTIONS = ("drop", "delay", "corrupt", "close")


class Backoff:
    """A jittered exponential backoff schedule.

    ``delay(attempt)`` (0-based) returns ``initial * factor**attempt``
    capped at ``maximum``, scaled by a seeded jitter in
    ``[1 - jitter, 1]`` — full determinism per seed, no thundering
    herd across seeds.
    """

    def __init__(
        self,
        initial: float = 0.05,
        factor: float = 2.0,
        maximum: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        self.initial = initial
        self.factor = factor
        self.maximum = maximum
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        base = min(self.maximum, self.initial * self.factor ** max(0, attempt))
        with self._lock:
            scale = 1.0 - self.jitter * self._rng.random()
        return base * scale

    def sleep(self, attempt: int, budget: float | None = None) -> float:
        """Sleep for ``delay(attempt)`` (clipped to ``budget`` seconds
        when given); returns the seconds actually slept."""
        seconds = self.delay(attempt)
        if budget is not None:
            seconds = max(0.0, min(seconds, budget))
        if seconds > 0.0:
            time.sleep(seconds)
        return seconds


@dataclass
class FaultRule:
    """One scheduled fault: *who*, *when*, *what*.

    ``role``/``direction`` select the traffic stream (``"*"`` matches
    any); ``op`` matches the message's ``"op"`` key (``None`` = any
    message).  The rule fires on match number ``nth`` (1-based) and
    keeps firing for ``times`` consecutive matches (``0`` = forever).
    """

    role: str = "*"
    direction: str = "*"  # "send" | "recv" | "*"
    op: str | None = None
    nth: int = 1
    times: int = 1
    action: str = "drop"
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"choose from {FAULT_ACTIONS}"
            )


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault, recorded for test assertions."""

    role: str
    direction: str
    op: str | None
    action: str


class FaultPlan:
    """A thread-safe, deterministic schedule of injected faults.

    The plan is consulted by the protocol layer on every message; it
    matches rules, burns their counters, and records every fired fault
    in :attr:`fired` so tests can assert exactly which faults actually
    happened.  A plan with no rules is free to thread everywhere as a
    no-op (production code never constructs one).
    """

    def __init__(self, rules: list[FaultRule] | None = None) -> None:
        self._rules: list[FaultRule] = list(rules or ())
        self._counts: list[int] = [0] * len(self._rules)
        self._lock = threading.Lock()
        self.fired: list[FaultEvent] = []

    def add(self, rule: FaultRule) -> "FaultPlan":
        with self._lock:
            self._rules.append(rule)
            self._counts.append(0)
        return self

    def decide(
        self, role: str, direction: str, message: object
    ) -> FaultRule | None:
        """The rule firing for this message, if any (first match wins;
        every matching rule's counter advances either way)."""
        op = message.get("op") if isinstance(message, dict) else None
        chosen: FaultRule | None = None
        with self._lock:
            for index, rule in enumerate(self._rules):
                if rule.role not in ("*", role):
                    continue
                if rule.direction not in ("*", direction):
                    continue
                if rule.op is not None and rule.op != op:
                    continue
                self._counts[index] += 1
                count = self._counts[index]
                if count < rule.nth:
                    continue
                if rule.times and count >= rule.nth + rule.times:
                    continue
                if chosen is None:
                    chosen = rule
                    self.fired.append(
                        FaultEvent(role, direction, op, rule.action)
                    )
        return chosen

    def fired_actions(self) -> list[str]:
        """The actions fired so far, in order (test convenience)."""
        with self._lock:
            return [event.action for event in self.fired]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(rules={len(self._rules)}, fired={len(self.fired)})"
