"""The worker loop behind ``repro worker``.

A worker dials the coordinator, introduces itself, and then answers
requests until told to stop.  It owns one
:class:`~repro.engine.cache.ArtifactCache` for its whole life —
point ``cache_dir`` at the store directory shared by the fleet and
every shape any worker compiled becomes a disk hit here; add
``max_store_bytes`` and the worker's writes also keep that directory
under budget (each write may trigger an LRU GC pass).

Engine-level failures never kill the worker: an exception while
explaining one circuit is returned as an ``EngineResult`` with
``status="error"`` and the loop continues.

Losing the *coordinator* no longer kills the worker either: with a
``reconnect_for`` budget the worker redials with jittered exponential
backoff, re-registers, and resumes serving — its cache (and therefore
the fleet's shared store) survives the partition, so the first batch
after recovery is warm.  An explicit ``shutdown`` op is the one clean
dismissal: the worker exits without reconnecting.
"""

from __future__ import annotations

import os
import time
from typing import Callable

from ...compiler.knowledge import compile_component
from ..base import EngineResult
from ..cache import ArtifactCache
from ..registry import get_engine
from ..store import PersistentArtifactStore
from .faults import Backoff, FaultPlan
from .protocol import connect, recv_msg, send_msg


def run_worker(
    address: str | tuple[str, int],
    cache_dir: str | None = None,
    max_store_bytes: int | None = None,
    connect_retry_for: float = 10.0,
    on_ready: Callable[[], None] | None = None,
    reconnect_for: float = 0.0,
    faults: FaultPlan | None = None,
) -> int:
    """Serve tasks from the coordinator at ``address`` until shutdown.

    Returns the number of tasks executed.  ``connect_retry_for`` keeps
    retrying the initial dial for that many seconds, so workers can be
    launched alongside (or slightly before) ``repro serve``.
    ``on_ready`` fires once, on first registration — tests use it as a
    barrier.  ``reconnect_for`` is the redial budget after *losing* the
    coordinator (0 keeps the old die-on-disconnect behaviour; the CLI
    defaults it on): each disconnect starts a fresh budget, redials use
    jittered exponential backoff, and the cache is reused across
    registrations.  ``faults`` is the deterministic fault-injection
    seam (role ``"worker"``).
    """
    store = (
        PersistentArtifactStore(cache_dir, max_bytes=max_store_bytes)
        if cache_dir
        else None
    )
    cache = ArtifactCache(store=store)
    executed = 0
    reconnects = 0
    registered_once = False
    retry_for = connect_retry_for
    while True:
        try:
            sock = connect(address, retry_for=retry_for)
        except OSError:
            if registered_once:
                break  # reconnect budget exhausted: give up for real
            raise  # never registered: surface the dial failure
        try:
            send_msg(sock, {"op": "hello", "role": "worker",
                            "pid": os.getpid()},
                     faults=faults, role="worker")
            if registered_once:
                reconnects += 1
            else:
                registered_once = True
                if on_ready is not None:
                    on_ready()
            done = _serve(sock, cache, faults, reconnects)
            executed += done[0]
            if done[1]:
                return executed  # clean shutdown: do not reconnect
        except Exception:
            pass  # link died mid-registration or mid-op: fall through
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if reconnect_for <= 0:
            break
        # The coordinator vanished (or discarded us after missed
        # heartbeats).  Redial for up to ``reconnect_for`` seconds —
        # connect() applies the jittered backoff between attempts.
        retry_for = reconnect_for
    return executed


def _serve(
    sock, cache: ArtifactCache, faults: FaultPlan | None, reconnects: int
) -> tuple[int, bool]:
    """Answer ops on one registered connection until it ends.

    Returns ``(tasks executed, clean shutdown?)`` — ``False`` means
    the link died and the caller may reconnect.  ``reconnects`` is how
    often this worker has re-registered so far; it rides the ``stats``
    reply so the coordinator's aggregation surfaces it to clients as
    ``remote_reconnects``."""
    executed = 0
    while True:
        try:
            message = recv_msg(sock, faults=faults, role="worker")
        except Exception:
            return executed, False  # link died; caller decides
        if message is None:
            return executed, False  # coordinator hung up
        if not isinstance(message, dict):
            continue  # garbage survives unpickling? ignore, stay alive
        op = message.get("op")
        if op == "shutdown":
            return executed, True
        try:
            if op == "task":
                send_msg(sock, {
                    "op": "result",
                    "id": message["id"],
                    "result": _execute(cache, message),
                }, faults=faults, role="worker")
                executed += 1
            elif op == "task_group":
                send_msg(sock, {
                    "op": "result_group",
                    "results": _execute_group(cache, message),
                }, faults=faults, role="worker")
                executed += len(message.get("tasks", ()))
            elif op == "warm":
                send_msg(sock, {
                    "op": "warmed",
                    "id": message["id"],
                    "ok": _warm(cache, message),
                }, faults=faults, role="worker")
                executed += 1
            elif op == "compile":
                compiled, seconds, ok = _compile(cache, message)
                send_msg(sock, {
                    "op": "compiled",
                    "id": message["id"],
                    "ok": ok,
                    "compiled": compiled,
                    "seconds": seconds,
                }, faults=faults, role="worker")
                executed += 1
            elif op == "ping":
                # Heartbeat probe from the coordinator's liveness
                # thread; also answers per-link health checks.
                send_msg(sock, {"op": "pong", "pid": os.getpid()},
                         faults=faults, role="worker")
            elif op == "stats":
                stats = cache.stats_dict()
                stats["reconnects"] = reconnects
                send_msg(sock, {"op": "stats", "stats": stats},
                         faults=faults, role="worker")
            else:
                send_msg(
                    sock, {"op": "error", "message": f"unknown op {op!r}"},
                    faults=faults, role="worker",
                )
        except Exception:
            return executed, False  # send failed: link is gone


def _warm(cache: ArtifactCache, message: dict) -> bool:
    """Compile-only execution of one compile-ahead task.

    Builds the shape's artifacts (CNF, d-DNNF, gate tape) through this
    worker's cache — landing them in the fleet's shared store — without
    running Algorithm 1.  Failures (budget, corrupt input) are reported
    as ``ok=False`` and never kill the worker.
    """
    try:
        options = message["options"].with_(cache=cache)
        handle = cache.open(message["circuit"].condition({}))
        budget = options.compilation_budget()
        if options.mode == "derivative":
            handle.tape(budget=budget, jobs=options.compile_jobs)
        else:
            handle.ddnnf(budget=budget, jobs=options.compile_jobs)
        return True
    except Exception:
        return False


def _compile(cache: ArtifactCache, message: dict) -> tuple[bool, float, bool]:
    """One pipelined component-compile op: ensure the canonical
    component ``message["key"]`` is in this worker's memo (and, with a
    shared store, in the fleet's ``.comp`` tier).

    Returns ``(compiled, seconds, ok)``: ``compiled`` is ``False`` on a
    memo/store hit — the fleet-wide compile-once case — and ``ok`` is
    ``False`` on a failure (budget, corrupt input), which never kills
    the worker: the owning shape's stitch job retries inline and
    reports the real error per answer.
    """
    started = time.perf_counter()
    try:
        compiled = compile_component(
            message["key"],
            cache.component_memo(),
            budget=message.get("budget"),
        )
        seconds = time.perf_counter() - started
        if compiled:
            cache.record_pipeline(compiles=1)
        return compiled, seconds, True
    except Exception:
        return False, time.perf_counter() - started, False


def _execute_group(cache: ArtifactCache, message: dict) -> dict:
    """One batched ``task_group``: a same-shape answer run executed as
    a single ``engine.explain_batch`` call.

    Returns ``{task id: EngineResult}``.  A group-level failure is
    reported per task (status ``"error"``), mirroring :func:`_execute`:
    nothing kills the worker loop.
    """
    engine_name = message["engine"]
    tasks = message["tasks"]
    try:
        engine = get_engine(engine_name)
        requests = [
            (task["circuit"], task["players"],
             task["options"].with_(cache=cache))
            for task in tasks
        ]
        results = engine.explain_batch(requests)
        return {task["id"]: result for task, result in zip(tasks, results)}
    except Exception as error:
        failure = f"{type(error).__name__}: {error}"
        return {
            task["id"]: EngineResult(
                method=engine_name,
                values=None,
                exact=False,
                status="error",
                error=failure,
            )
            for task in tasks
        }


def _execute(cache: ArtifactCache, message: dict) -> EngineResult:
    engine_name = message["engine"]
    try:
        engine = get_engine(engine_name)
        options = message["options"].with_(cache=cache)
        if message.get("stitch"):
            # A pipelined shape representative: its components are
            # already compiled, so this task is pure stitching.
            cache.record_pipeline(stitches=1)
        return engine.explain_circuit(
            message["circuit"], message["players"], options
        )
    except Exception as error:
        return EngineResult(
            method=engine_name,
            values=None,
            exact=False,
            status="error",
            error=f"{type(error).__name__}: {error}",
        )
