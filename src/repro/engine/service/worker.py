"""The worker loop behind ``repro worker``.

A worker dials the coordinator, introduces itself, and then answers
requests until told to stop (or until the coordinator goes away).  It
owns one :class:`~repro.engine.cache.ArtifactCache` for its whole life
— point ``cache_dir`` at the store directory shared by the fleet and
every shape any worker compiled becomes a disk hit here; add
``max_store_bytes`` and the worker's writes also keep that directory
under budget (each write may trigger an LRU GC pass).

Engine-level failures never kill the worker: an exception while
explaining one circuit is returned as an ``EngineResult`` with
``status="error"`` and the loop continues.
"""

from __future__ import annotations

import os
import time
from typing import Callable

from ...compiler.knowledge import compile_component
from ..base import EngineResult
from ..cache import ArtifactCache
from ..registry import get_engine
from ..store import PersistentArtifactStore
from .protocol import connect, recv_msg, send_msg


def run_worker(
    address: str | tuple[str, int],
    cache_dir: str | None = None,
    max_store_bytes: int | None = None,
    connect_retry_for: float = 10.0,
    on_ready: Callable[[], None] | None = None,
) -> int:
    """Serve tasks from the coordinator at ``address`` until shutdown.

    Returns the number of tasks executed.  ``connect_retry_for`` keeps
    retrying the initial dial for that many seconds, so workers can be
    launched alongside (or slightly before) ``repro serve``.
    ``on_ready`` fires once registered — tests use it as a barrier.
    """
    sock = connect(address, retry_for=connect_retry_for)
    store = (
        PersistentArtifactStore(cache_dir, max_bytes=max_store_bytes)
        if cache_dir
        else None
    )
    cache = ArtifactCache(store=store)
    executed = 0
    try:
        send_msg(sock, {"op": "hello", "role": "worker", "pid": os.getpid()})
        if on_ready is not None:
            on_ready()
        while True:
            try:
                message = recv_msg(sock)
            except Exception:
                break  # coordinator vanished; nothing left to serve
            if message is None or message.get("op") == "shutdown":
                break
            op = message.get("op")
            if op == "task":
                send_msg(sock, {
                    "op": "result",
                    "id": message["id"],
                    "result": _execute(cache, message),
                })
                executed += 1
            elif op == "task_group":
                send_msg(sock, {
                    "op": "result_group",
                    "results": _execute_group(cache, message),
                })
                executed += len(message.get("tasks", ()))
            elif op == "warm":
                send_msg(sock, {
                    "op": "warmed",
                    "id": message["id"],
                    "ok": _warm(cache, message),
                })
                executed += 1
            elif op == "compile":
                compiled, seconds, ok = _compile(cache, message)
                send_msg(sock, {
                    "op": "compiled",
                    "id": message["id"],
                    "ok": ok,
                    "compiled": compiled,
                    "seconds": seconds,
                })
                executed += 1
            elif op == "stats":
                send_msg(sock, {"op": "stats", "stats": cache.stats_dict()})
            else:
                send_msg(
                    sock, {"op": "error", "message": f"unknown op {op!r}"}
                )
    finally:
        try:
            sock.close()
        except OSError:
            pass
    return executed


def _warm(cache: ArtifactCache, message: dict) -> bool:
    """Compile-only execution of one compile-ahead task.

    Builds the shape's artifacts (CNF, d-DNNF, gate tape) through this
    worker's cache — landing them in the fleet's shared store — without
    running Algorithm 1.  Failures (budget, corrupt input) are reported
    as ``ok=False`` and never kill the worker.
    """
    try:
        options = message["options"].with_(cache=cache)
        handle = cache.open(message["circuit"].condition({}))
        budget = options.compilation_budget()
        if options.mode == "derivative":
            handle.tape(budget=budget, jobs=options.compile_jobs)
        else:
            handle.ddnnf(budget=budget, jobs=options.compile_jobs)
        return True
    except Exception:
        return False


def _compile(cache: ArtifactCache, message: dict) -> tuple[bool, float, bool]:
    """One pipelined component-compile op: ensure the canonical
    component ``message["key"]`` is in this worker's memo (and, with a
    shared store, in the fleet's ``.comp`` tier).

    Returns ``(compiled, seconds, ok)``: ``compiled`` is ``False`` on a
    memo/store hit — the fleet-wide compile-once case — and ``ok`` is
    ``False`` on a failure (budget, corrupt input), which never kills
    the worker: the owning shape's stitch job retries inline and
    reports the real error per answer.
    """
    started = time.perf_counter()
    try:
        compiled = compile_component(
            message["key"],
            cache.component_memo(),
            budget=message.get("budget"),
        )
        seconds = time.perf_counter() - started
        if compiled:
            cache.record_pipeline(compiles=1)
        return compiled, seconds, True
    except Exception:
        return False, time.perf_counter() - started, False


def _execute_group(cache: ArtifactCache, message: dict) -> dict:
    """One batched ``task_group``: a same-shape answer run executed as
    a single ``engine.explain_batch`` call.

    Returns ``{task id: EngineResult}``.  A group-level failure is
    reported per task (status ``"error"``), mirroring :func:`_execute`:
    nothing kills the worker loop.
    """
    engine_name = message["engine"]
    tasks = message["tasks"]
    try:
        engine = get_engine(engine_name)
        requests = [
            (task["circuit"], task["players"],
             task["options"].with_(cache=cache))
            for task in tasks
        ]
        results = engine.explain_batch(requests)
        return {task["id"]: result for task, result in zip(tasks, results)}
    except Exception as error:
        failure = f"{type(error).__name__}: {error}"
        return {
            task["id"]: EngineResult(
                method=engine_name,
                values=None,
                exact=False,
                status="error",
                error=failure,
            )
            for task in tasks
        }


def _execute(cache: ArtifactCache, message: dict) -> EngineResult:
    engine_name = message["engine"]
    try:
        engine = get_engine(engine_name)
        options = message["options"].with_(cache=cache)
        if message.get("stitch"):
            # A pipelined shape representative: its components are
            # already compiled, so this task is pure stitching.
            cache.record_pipeline(stitches=1)
        return engine.explain_circuit(
            message["circuit"], message["players"], options
        )
    except Exception as error:
        return EngineResult(
            method=engine_name,
            values=None,
            exact=False,
            status="error",
            error=f"{type(error).__name__}: {error}",
        )
