"""Completion-driven compile/execute pipelining for local transports.

The classic cold-batch schedule runs the warm wave *first and alone*:
every answer waits behind a serial compile barrier even though the
component memo already makes sub-circuits shareable.  This module
replaces the barrier with a streaming schedule driven by a
:class:`~repro.engine.scheduler.PipelinePlan`:

1. every fleet-deduplicated component compile is submitted up front, in
   the plan's critical-path order;
2. the moment the last component a shape needs lands, its *stitch* job
   (the shape representative — now pure stitching plus tape lowering)
   is submitted;
3. the moment a stitch lands, the shape's sibling answers dispatch down
   the batched path — while other shapes are still compiling.

The harness is executor-agnostic: callers provide three submit
callbacks (component compile, single job, job group) returning
futures, so the same loop drives a thread pool and a process pool.
One caller thread processes completions — there is no shared mutable
state and therefore no locking (the REP004 lock-order graph gains no
nodes here).

Determinism: pipelining reorders *wall-clock* only.  Component
compiles are byte-identical to the ones the stitching path would have
performed (see :func:`~repro.compiler.knowledge.compile_component`),
publishes are idempotent, and every shape still runs its
representative before its siblings — so Fractions are byte-identical
to the barrier schedule.

Failure semantics: a failed component compile (budget, bug) is marked
done anyway — the owning shape's stitch job then compiles the
component inline and reports per-answer status exactly as the barrier
schedule would.  A failed stitch or group future aborts the batch like
:func:`repro.engine.service.local._collect` does: outstanding futures
are cancelled and the error propagates.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..base import EngineResult
from ..scheduler import BatchPlan, ComponentJob, Job

Span = tuple[float, float]


def merge_intervals(spans: Sequence[Span]) -> list[Span]:
    """Union of possibly-overlapping ``(start, end)`` intervals, as a
    sorted list of disjoint intervals.  Empty/inverted spans are
    dropped."""
    merged: list[list[float]] = []
    for start, end in sorted(spans):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1][1] = end
        else:
            merged.append([start, end])
    return [(start, end) for start, end in merged]


def interval_overlap(a: Sequence[Span], b: Sequence[Span]) -> float:
    """Seconds during which *any* interval of ``a`` overlaps *any*
    interval of ``b`` — the union-interval intersection measure.

    This is the honest definition of ``pipeline_overlap_seconds``:
    double-counting parallel compiles or parallel executions would
    inflate the stat, so both sides are unioned first.
    """
    left = merge_intervals(a)
    right = merge_intervals(b)
    total = 0.0
    i = j = 0
    while i < len(left) and j < len(right):
        low = max(left[i][0], right[j][0])
        high = min(left[i][1], right[j][1])
        if high > low:
            total += high - low
        if left[i][1] <= right[j][1]:
            i += 1
        else:
            j += 1
    return total


def deadline_for(
    base: float | None,
    budget_seconds: float | None = None,
    items: int = 1,
) -> float | None:
    """Scale a per-op deadline to the work an op actually covers.

    ``base`` is the fleet's single-op deadline (``None`` = no deadline,
    which passes through).  Compile ops may legitimately run for their
    whole compilation ``budget_seconds``, and a ``task_group`` covers
    ``items`` answers in one round-trip — a flat deadline would declare
    healthy-but-busy workers dead.  The result is never below ``base``:
    the deadline exists to catch *hung* links, not slow work.
    """
    if base is None:
        return None
    deadline = base * max(1, items)
    if budget_seconds is not None and budget_seconds > 0:
        deadline = max(deadline, base + budget_seconds)
    return max(base, deadline)


def timed_compile(compile_fn: Callable[[], bool]) -> tuple[bool, float]:
    """Run one component compile and measure it: ``(compiled,
    seconds)``.  The standard body of a pipeline compile task."""
    started = time.perf_counter()
    compiled = compile_fn()
    return compiled, time.perf_counter() - started


@dataclass
class PipelineOutcome:
    """What one pipelined batch actually did, for the stats plumbing."""

    outcomes: dict[int, EngineResult] = field(default_factory=dict)
    #: Standalone compiles the component pass performed (memo/store
    #: hits excluded).
    compiles: int = 0
    #: Stitch jobs dispatched (shape representatives that had compile
    #: dependencies).
    stitches: int = 0
    #: Union-interval intersection of compile and execute activity.
    overlap_seconds: float = 0.0
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0


def run_pipelined(
    plan: BatchPlan,
    submit_compile: Callable[[ComponentJob], Future],
    submit_job: Callable[[Job], Future],
    submit_group: Callable[[list[Job]], Future],
    max_inflight_compiles: int | None = None,
) -> PipelineOutcome:
    """Drive one batch through the compile/execute pipeline.

    ``submit_compile(component)`` must return a future resolving to
    ``(compiled, seconds)`` (see :func:`timed_compile`);
    ``submit_job(job)`` one resolving to an :class:`EngineResult`;
    ``submit_group(jobs)`` one resolving to a list of results in job
    order.  Completions are processed on the calling thread.

    ``max_inflight_compiles`` bounds how many component compiles are
    submitted at once.  Against a FIFO executor this is what makes the
    pipeline actually pipeline: with more components than pool slots,
    submitting every compile up front parks ready stitches behind the
    whole compile backlog — a barrier in disguise.  Transports pass
    ``pool width - 1`` so one slot always drains execution-ready work;
    ``None`` keeps the submit-everything behaviour.
    """
    pipeline = plan.pipeline
    assert pipeline is not None, "run_pipelined needs plan.pipeline"
    outcome = PipelineOutcome()
    compile_spans: list[Span] = []
    execute_spans: list[Span] = []

    # Shape bookkeeping: which component indexes each gated shape still
    # waits for, and which shapes wait on each component index.
    waiting: dict[str, set[int]] = {}
    dependents: dict[int, list[str]] = {}
    rep_for: dict[str, Job] = {}
    tails: dict[str, list[list[Job]]] = {}
    for rep in plan.warm_wave:
        rep_for.setdefault(rep.affinity(), rep)
    for group in plan.groups:
        tails.setdefault(group[0].affinity(), []).append(group)
    for affinity, indexes in pipeline.needs.items():
        if affinity not in rep_for:
            continue
        remaining = set(indexes)
        if not remaining:
            continue
        waiting[affinity] = remaining
        for index in indexes:
            dependents.setdefault(index, []).append(affinity)

    pending: dict[Future, tuple] = {}

    def start_rep(affinity: str, gated: bool) -> None:
        rep = rep_for[affinity]
        if gated:
            outcome.stitches += 1
        pending[submit_job(rep)] = ("rep", rep, affinity)

    def start_tails(affinity: str) -> None:
        for group in tails.get(affinity, ()):
            if plan.batched:
                pending[submit_group(group)] = ("group", group)
            else:
                for job in group:
                    pending[submit_job(job)] = ("job", job)

    # Compiles are released in critical-path order through a bounded
    # window (see ``max_inflight_compiles``): the window fills first,
    # then each completion hands its slot to the next queued compile —
    # *after* any stitch it unlocked, so execution-ready work sits
    # ahead of the replacement compile in a FIFO executor's queue.
    compile_backlog = [
        (index, component)
        for index, component in enumerate(pipeline.components)
        if index in dependents
    ]
    compile_backlog.reverse()  # pop() yields critical-path order
    window = (len(compile_backlog) if max_inflight_compiles is None
              else max(1, max_inflight_compiles))
    inflight_compiles = 0

    def feed_compiles() -> None:
        nonlocal inflight_compiles
        while compile_backlog and inflight_compiles < window:
            index, component = compile_backlog.pop()
            inflight_compiles += 1
            pending[submit_compile(component)] = ("compile", index, component)

    feed_compiles()
    for rep in plan.warm_wave:
        affinity = rep.affinity()
        if rep_for[affinity] is rep and affinity not in waiting:
            start_rep(affinity, gated=False)

    try:
        while pending:
            done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
            for future in done:
                tag = pending.pop(future)
                now = time.perf_counter()
                if tag[0] == "compile":
                    _, index, component = tag
                    inflight_compiles -= 1
                    try:
                        compiled, seconds = future.result()
                    except Exception:
                        # The owning shapes' stitch jobs compile the
                        # component inline and surface the real error
                        # per answer, as the barrier schedule would.
                        compiled, seconds = False, 0.0
                    if compiled:
                        outcome.compiles += 1
                    if seconds > 0.0:
                        compile_spans.append((now - seconds, now))
                        cost_model = pipeline.cost_model
                        if cost_model is not None and compiled:
                            cost_model.observe(component.key, seconds)
                    for affinity in dependents.get(index, ()):
                        remaining = waiting.get(affinity)
                        if remaining is None:
                            continue
                        remaining.discard(index)
                        if not remaining:
                            del waiting[affinity]
                            start_rep(affinity, gated=True)
                    feed_compiles()
                elif tag[0] == "rep":
                    _, rep, affinity = tag
                    result = future.result()
                    outcome.outcomes[rep.index] = result
                    seconds = getattr(result, "seconds", 0.0) or 0.0
                    if seconds > 0.0:
                        execute_spans.append((now - seconds, now))
                    start_tails(affinity)
                elif tag[0] == "group":
                    _, group = tag
                    results = future.result()
                    seconds = 0.0
                    for job, result in zip(group, results):
                        outcome.outcomes[job.index] = result
                        seconds += getattr(result, "seconds", 0.0) or 0.0
                    if seconds > 0.0:
                        execute_spans.append((now - seconds, now))
                else:  # "job"
                    _, job = tag
                    result = future.result()
                    outcome.outcomes[job.index] = result
                    seconds = getattr(result, "seconds", 0.0) or 0.0
                    if seconds > 0.0:
                        execute_spans.append((now - seconds, now))
    except BaseException:
        for future in pending:
            future.cancel()
        raise

    outcome.compile_seconds = sum(end - start for start, end in
                                  merge_intervals(compile_spans))
    outcome.execute_seconds = sum(end - start for start, end in
                                  merge_intervals(execute_spans))
    outcome.overlap_seconds = interval_overlap(compile_spans, execute_spans)
    return outcome
