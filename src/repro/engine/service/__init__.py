"""The service layer: pluggable transports executing a batch plan.

A :class:`~repro.engine.service.base.Transport` takes the
:class:`~repro.engine.scheduler.BatchPlan` produced by the scheduler
and returns one :class:`~repro.engine.base.EngineResult` per job.
Three interchangeable backends ship here:

* :class:`InProcessTransport` — a long-lived thread pool sharing the
  session's in-memory cache (the default; what ``executor="thread"``
  always meant);
* :class:`ProcessPoolTransport` — a *persistent*
  :class:`~concurrent.futures.ProcessPoolExecutor` reused across
  ``explain_many`` calls; the warm wave compiles in the parent so
  workers reload artifacts from the shared persistent store;
* :class:`SocketTransport` — a client of the socket
  :class:`Coordinator` (``repro serve``), which routes shape-affine
  shards to long-lived ``repro worker`` processes sharing one
  :class:`~repro.engine.store.PersistentArtifactStore` directory.

All three produce identical results for the same batch: exact engines
return equal :class:`~fractions.Fraction` objects, sampling engines
equal values for equal seeds (per-answer seeds are derived before the
plan ever reaches a transport).
"""

from .base import FleetBusy, FleetUnavailable, Transport, TransportError
from .coordinator import Coordinator
from .faults import Backoff, FaultPlan, FaultRule
from .local import InProcessTransport, ProcessPoolTransport
from .protocol import DeadlineExceeded, ProtocolError, format_address, parse_address
from .remote import SocketTransport
from .worker import run_worker

__all__ = [
    "Transport", "TransportError", "FleetBusy", "FleetUnavailable",
    "InProcessTransport", "ProcessPoolTransport", "SocketTransport",
    "Coordinator", "run_worker",
    "Backoff", "FaultPlan", "FaultRule",
    "DeadlineExceeded", "ProtocolError",
    "parse_address", "format_address",
]
