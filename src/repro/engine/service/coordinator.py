"""The socket coordinator: routes batch shards to long-lived workers.

One :class:`Coordinator` listens on a TCP port.  Two kinds of peers
connect (see :mod:`~repro.engine.service.protocol` for the wire format
and its trusted-network caveat):

* **workers** (``repro worker``) introduce themselves and then answer
  ``task`` requests for the rest of their life.  Workers keep their own
  :class:`~repro.engine.cache.ArtifactCache` — ideally over one shared
  :class:`~repro.engine.store.PersistentArtifactStore` directory, so a
  shape any worker compiled is a disk hit for every other worker and
  for every later batch;
* **clients** (:class:`~repro.engine.service.remote.SocketTransport`,
  i.e. an ``ExplainSession`` with ``executor="socket"``) submit batches
  and read back one result per job.

Placement uses :func:`~repro.engine.scheduler.assign_shards`: all jobs
of one canonical shape go to one worker, representative first, so the
shape compiles (or store-loads) once on that worker and its siblings
are in-memory hits — no cross-worker barrier needed.  A worker that
dies mid-shard has its unfinished jobs redistributed to the survivors;
the batch only fails when no workers remain.
"""

from __future__ import annotations

import select
import socket
import threading
import time
from collections import OrderedDict, deque

from ..base import EngineResult
from ..scheduler import assign_shards
from .faults import FaultPlan
from .pipeline import deadline_for, interval_overlap
from .protocol import ProtocolError, enable_keepalive, recv_msg, send_msg


def _idle_link_dead(sock: socket.socket) -> bool:
    """Whether an *idle* worker socket has hung up.

    Idle workers never send unsolicited data, so the socket being
    readable means EOF (or a protocol violation — treated the same).
    A zero-timeout select keeps this a cheap, non-blocking probe.
    """
    try:
        readable, _, _ = select.select([sock], [], [], 0)
        if not readable:
            return False
        return sock.recv(1, socket.MSG_PEEK) == b""
    except OSError:
        return True


class _WorkerLink:
    """One registered worker connection, used synchronously."""

    def __init__(
        self,
        sock: socket.socket,
        peer: str,
        faults: FaultPlan | None = None,
    ) -> None:
        self.sock = sock
        self.peer = peer
        self.lock = threading.Lock()
        self.alive = True
        self.faults = faults
        #: Consecutive failed heartbeats (reset by any successful pong).
        self.misses = 0

    def request(self, message: dict, timeout: float | None = None) -> dict:
        """Send one request and read its reply (serialized per link).

        ``timeout`` bounds *each leg* of the round-trip — a hung worker
        trips :class:`~.protocol.DeadlineExceeded` here and flows into
        the dispatcher's existing dead-worker requeue paths instead of
        stalling the batch forever."""
        with self.lock:
            send_msg(self.sock, message, timeout=timeout,
                     faults=self.faults, role="coordinator")
            reply = recv_msg(self.sock, timeout=timeout,
                             faults=self.faults, role="coordinator")
        if reply is None:
            raise ConnectionError(f"worker {self.peer} closed the connection")
        return reply

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.close()
        except OSError:
            pass


class _BatchFailed(RuntimeError):
    """No live workers remained for part of a batch."""


def _budget_seconds(budget) -> float | None:
    """The numeric seconds of a compilation budget (objects carry it
    as ``max_seconds``); ``None`` when unbudgeted or non-numeric."""
    seconds = getattr(budget, "max_seconds", budget)
    try:
        return float(seconds) if seconds is not None else None
    except (TypeError, ValueError):
        return None


def _affinity_runs(shard: list[dict]) -> list[list[dict]]:
    """Split a shard into runs of consecutive equal-affinity tasks.

    :func:`~repro.engine.scheduler.assign_shards` keeps each affinity
    group contiguous and in input order, so one run is one same-shape
    answer group (representative first) — the unit a worker can execute
    as a single batched ``task_group`` call."""
    runs: list[list[dict]] = []
    for task in shard:
        if runs and runs[-1][0].get("affinity") == task.get("affinity"):
            runs[-1].append(task)
        else:
            runs.append([task])
    return runs


class Coordinator:
    """A coordinator service bound to ``host:port`` (``port=0`` picks a
    free port; read the actual one from :attr:`address`).

    Use :meth:`start` for a background thread (tests, embedding) or
    :meth:`serve_forever` to block (the ``repro serve`` CLI).  Batches
    from concurrent clients are serialized — workers are a shared
    resource and interleaving two batches would break both batches'
    shape-affinity assumptions.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float | None = 5.0,
        heartbeat_miss_threshold: int = 3,
        op_timeout: float | None = 120.0,
        max_queue: int | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self._listener = socket.create_server((host, port), reuse_port=False)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._workers: list[_WorkerLink] = []
        self._cond = threading.Condition()
        self._batch_lock = threading.Lock()
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None
        #: Liveness probing of *idle* worker links (busy links are the
        #: dispatchers' problem — their per-op deadlines catch hangs).
        #: ``None`` disables the prober.
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_miss_threshold = max(1, heartbeat_miss_threshold)
        #: Base per-leg deadline of every worker round-trip; compile and
        #: group ops stretch it via :func:`~.pipeline.deadline_for`.
        self.op_timeout = op_timeout
        #: Admission bound: batches queued + running.  ``None`` admits
        #: everything (pre-resilience behaviour).
        self.max_queue = max_queue
        #: How long a *resubmitted* batch id waits for the original
        #: submission to finish before giving up with an error.
        self.resubmit_wait = 600.0
        self._faults = faults
        self._heartbeat_thread: threading.Thread | None = None
        # Resilience accounting.  _health_lock is a leaf lock: nothing
        # that takes another lock ever runs while it is held.
        self._health_lock = threading.Lock()
        self._counters: dict[str, int] = {
            "heartbeat_misses": 0,
            "rejected_batches": 0,
            "protocol_errors": 0,
            "batches_resubmitted": 0,
        }
        self._queue_depth = 0
        # Client-generated batch-id dedupe: replies of recent batches
        # (bounded) plus an Event per in-flight id, so a client that
        # lost the reply to a partition can resubmit without the fleet
        # doing the work twice.
        self._batch_replies: OrderedDict[str, dict] = OrderedDict()
        self._batch_replies_max = 8
        self._batch_inflight: dict[str, threading.Event] = {}
        # Compile-ahead queue: shapes submitted via the "warm" op are
        # compiled by workers off the request path (see _warm_loop).
        self._warm_queue: deque[dict] = deque()
        self._warm_lock = threading.Lock()
        self._warm_event = threading.Event()
        self._warm_thread: threading.Thread | None = None
        self._warm_inflight = 0
        self._warm_completed = 0
        self._warm_failed = 0
        self._warm_compile_completed = 0
        self._warm_compile_failed = 0
        #: How long a queued warm task waits for a worker to register
        #: before it is counted as failed.
        self.warm_worker_timeout = 30.0
        #: Cumulative compile/execute overlap of every pipelined batch
        #: this coordinator ran (seconds).  Reported to clients inside
        #: ``worker_stats`` so the session surfaces it under
        #: ``remote_pipeline_overlap_seconds``, cumulative like every
        #: other remote counter.
        self._pipeline_overlap_total = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "Coordinator":
        """Accept connections on a background daemon thread."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-coordinator", daemon=True
            )
            self._accept_thread.start()
        if self._heartbeat_thread is None and self.heartbeat_interval:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name="repro-heartbeat",
                daemon=True,
            )
            self._heartbeat_thread.start()
        return self

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` (for the CLI process)."""
        self.start()
        self._stop.wait()

    def shutdown(self) -> None:
        """Stop accepting, dismiss every worker, release the port."""
        self._stop.set()
        self._warm_event.set()  # unblock the warmer so it can exit
        try:
            self._listener.close()
        except OSError:
            pass
        with self._cond:
            workers, self._workers = self._workers, []
            self._cond.notify_all()
        for link in workers:
            try:
                with link.lock:
                    send_msg(link.sock, {"op": "shutdown"}, timeout=1.0)
            except Exception:
                pass  # a dead or hung worker cannot block shutdown
            link.close()

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    @property
    def n_workers(self) -> int:
        """Count of *live* workers (links that hung up while idle are
        swept out before counting)."""
        with self._cond:
            self._sweep_dead_locked()
            return len(self._workers)

    def wait_for_workers(self, n: int, timeout: float | None = None) -> int:
        """Block until at least ``n`` *live* workers are registered (or
        the timeout passes); returns the current count either way.

        Every check sweeps links whose peers disconnected while idle,
        so a dead worker never satisfies the barrier."""
        with self._cond:
            def enough() -> bool:
                self._sweep_dead_locked()
                return len(self._workers) >= n

            self._cond.wait_for(enough, timeout)
            return len(self._workers)

    def _sweep_dead_locked(self) -> None:
        """Drop links whose idle sockets report EOF (caller holds the
        condition lock).  Links busy in a batch are skipped — their
        dispatcher owns failure detection there."""
        for link in list(self._workers):
            if link.lock.locked():
                continue  # mid-request: the dispatcher will notice
            if _idle_link_dead(link.sock):
                link.close()
                self._workers.remove(link)

    def _register_worker(self, link: _WorkerLink) -> None:
        with self._cond:
            self._workers.append(link)
            self._cond.notify_all()

    def _discard_worker(self, link: _WorkerLink) -> None:
        link.close()
        with self._cond:
            if link in self._workers:
                self._workers.remove(link)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------

    def _count(self, key: str, n: int = 1) -> None:
        with self._health_lock:
            self._counters[key] = self._counters.get(key, 0) + n

    def _heartbeat_loop(self) -> None:
        """Probe *idle* worker links every ``heartbeat_interval``.

        A link busy in a batch is skipped (non-blocking acquire): its
        dispatcher's per-op deadline owns failure detection there, and
        interleaving a ping into an in-flight request would corrupt the
        request/reply pairing.  A probe that fails (deadline, EOF,
        garbage) counts one miss; ``heartbeat_miss_threshold``
        consecutive misses discard the worker — batches started after
        that never see it, and the compile-ahead queue stops routing
        to it.  A slow-but-alive worker whose pong arrives after the
        deadline is self-healing: the stale pong makes the *next*
        exchange fail out-of-protocol, which discards the link, and
        the worker's reconnect loop re-registers it fresh.
        """
        while not self._stop.wait(self.heartbeat_interval):
            with self._cond:
                links = list(self._workers)
            for link in links:
                if self._stop.is_set():
                    return
                if not link.alive:
                    continue
                if not link.lock.acquire(blocking=False):
                    continue  # mid-request: dispatcher owns detection
                try:
                    send_msg(link.sock, {"op": "ping"},
                             timeout=self.heartbeat_interval,
                             faults=self._faults, role="coordinator")
                    reply = recv_msg(link.sock,
                                     timeout=self.heartbeat_interval,
                                     faults=self._faults, role="coordinator")
                    ok = isinstance(reply, dict) and reply.get("op") == "pong"
                except Exception:
                    ok = False
                finally:
                    link.lock.release()
                if ok:
                    link.misses = 0
                    continue
                link.misses += 1
                self._count("heartbeat_misses")
                if link.misses >= self.heartbeat_miss_threshold:
                    self._discard_worker(link)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, peer = self._listener.accept()
            except OSError:
                break  # listener closed by shutdown()
            threading.Thread(
                target=self._handle_connection,
                args=(conn, f"{peer[0]}:{peer[1]}"),
                name=f"repro-peer-{peer[1]}",
                daemon=True,
            ).start()

    def _handle_connection(self, conn: socket.socket, peer: str) -> None:
        enable_keepalive(conn)
        try:
            hello = recv_msg(conn)
        except ProtocolError:
            self._count("protocol_errors")
            conn.close()
            return
        except Exception:
            conn.close()
            return
        if not isinstance(hello, dict) or hello.get("op") != "hello":
            if hello is not None:
                self._count("protocol_errors")
            conn.close()
            return
        if hello.get("role") == "worker":
            # Registration is all this thread does: the link is driven
            # synchronously by batch dispatchers from here on.
            self._register_worker(_WorkerLink(conn, peer, self._faults))
            return
        self._serve_client(conn)

    def _serve_client(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    message = recv_msg(conn, faults=self._faults,
                                       role="coordinator")
                except ProtocolError:
                    # Malformed/truncated frame: the stream cannot be
                    # resynchronized, so the connection is dropped —
                    # but counted, so operators can see a misbehaving
                    # (or merely mis-versioned) client.
                    self._count("protocol_errors")
                    return
                except Exception:
                    return
                if message is None:
                    return
                if not isinstance(message, dict):
                    self._count("protocol_errors")
                    return
                op = message.get("op")
                if op == "ping":
                    send_msg(conn, {"op": "pong", "workers": self.n_workers})
                elif op == "shutdown":
                    send_msg(conn, {"op": "ok"})
                    self.shutdown()
                    return
                elif op == "batch":
                    send_msg(conn, self._admit_batch(message))
                elif op == "warm":
                    send_msg(conn, self._enqueue_warm(message))
                elif op == "warm_status":
                    send_msg(conn, self._warm_status())
                else:
                    send_msg(
                        conn, {"op": "error", "message": f"unknown op {op!r}"}
                    )
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Admission and dedupe
    # ------------------------------------------------------------------

    def _admit_batch(self, message: dict) -> dict:
        """Admission control plus batch-id dedupe around one batch.

        Resubmits (same client-generated ``batch_id``) are answered
        from the bounded reply cache, or — when the original submission
        is still running — by waiting for it; neither re-runs the work
        or consumes an admission slot.  Fresh batches are rejected with
        an explicit ``busy`` reply once ``max_queue`` batches are
        queued or running; the client backs off and retries.  Error
        replies are *not* cached, so a retry after a transient fleet
        failure genuinely re-runs."""
        batch_id = message.get("batch_id")
        while True:
            wait_event = None
            with self._health_lock:
                if batch_id is not None:
                    cached = self._batch_replies.get(batch_id)
                    if cached is not None:
                        self._counters["batches_resubmitted"] += 1
                        return cached
                    wait_event = self._batch_inflight.get(batch_id)
                    if wait_event is not None:
                        self._counters["batches_resubmitted"] += 1
                if wait_event is None:
                    if (self.max_queue is not None
                            and self._queue_depth >= self.max_queue):
                        self._counters["rejected_batches"] += 1
                        return {
                            "op": "busy",
                            "message": (
                                f"admission queue full "
                                f"(max_queue={self.max_queue})"
                            ),
                        }
                    self._queue_depth += 1
                    if batch_id is not None:
                        self._batch_inflight[batch_id] = threading.Event()
            if wait_event is None:
                break
            if not wait_event.wait(self.resubmit_wait):
                return {
                    "op": "error",
                    "message": f"batch {batch_id} still running after "
                               f"{self.resubmit_wait}s",
                }
            # The original finished: loop to read its cached reply (or
            # run afresh if it errored and was deliberately not cached).
        reply = {"op": "error", "message": "batch aborted"}
        try:
            reply = self._run_batch(message)
        except _BatchFailed as error:
            reply = {"op": "error", "message": str(error)}
        except Exception as error:  # defensive: report, don't die
            reply = {
                "op": "error",
                "message": f"{type(error).__name__}: {error}",
            }
        finally:
            with self._health_lock:
                self._queue_depth -= 1
                if batch_id is not None:
                    if reply.get("op") == "results":
                        self._batch_replies[batch_id] = reply
                        while len(self._batch_replies) > self._batch_replies_max:
                            self._batch_replies.popitem(last=False)
                    event = self._batch_inflight.pop(batch_id, None)
                    if event is not None:
                        event.set()
        return reply

    # ------------------------------------------------------------------
    # Compile-ahead queue
    # ------------------------------------------------------------------

    def _enqueue_warm(self, message: dict) -> dict:
        """Queue compile-ahead tasks and reply immediately.

        The client gets back the queue depth, not results: warming is
        fire-and-forget by design (poll ``warm_status`` to observe
        drain).  The warmer thread starts lazily on first use.

        Pipelined clients also send ``components`` — fleet-deduplicated
        canonical component compiles.  They are queued *ahead* of the
        shape representatives (the serial warmer then compiles each
        shared component exactly once before any representative
        stitches it) and tracked under separate counters, so
        ``completed``/``failed`` keep meaning representatives."""
        engine = message["engine"]
        tasks = message.get("tasks", [])
        components = message.get("components", [])
        with self._warm_lock:
            for component in components:
                self._warm_queue.append(
                    {**component, "engine": engine, "kind": "compile"}
                )
            for task in tasks:
                self._warm_queue.append({**task, "engine": engine})
            pending = len(self._warm_queue) + self._warm_inflight
        if self._warm_thread is None:
            self._warm_thread = threading.Thread(
                target=self._warm_loop, name="repro-warmer", daemon=True
            )
            self._warm_thread.start()
        self._warm_event.set()
        return {
            "op": "queued",
            "queued": len(tasks),
            "components": len(components),
            "pending": pending,
        }

    def _warm_status(self) -> dict:
        with self._warm_lock:
            return {
                "op": "warm_status",
                "queued": len(self._warm_queue),
                "in_flight": self._warm_inflight,
                "pending": len(self._warm_queue) + self._warm_inflight,
                "completed": self._warm_completed,
                "failed": self._warm_failed,
                "component_completed": self._warm_compile_completed,
                "component_failed": self._warm_compile_failed,
            }

    def _warm_loop(self) -> None:
        """Drain the compile-ahead queue, one task per batch-lock hold.

        Taking ``_batch_lock`` per *task* (not per queue drain) means a
        client batch arriving mid-warm preempts after at most one
        compile — warming never blocks the request path for long, which
        is the whole point of doing it ahead of time."""
        while True:
            self._warm_event.wait()
            if self._stop.is_set():
                return
            with self._warm_lock:
                if not self._warm_queue:
                    self._warm_event.clear()
                    continue
                task = self._warm_queue.popleft()
                self._warm_inflight += 1
            ok = False
            try:
                with self._batch_lock:
                    if not self._stop.is_set() and self.wait_for_workers(
                        1, self.warm_worker_timeout
                    ) >= 1:
                        ok = self._warm_one(task)
            finally:
                with self._warm_lock:
                    self._warm_inflight -= 1
                    if task.get("kind") == "compile":
                        if ok:
                            self._warm_compile_completed += 1
                        else:
                            self._warm_compile_failed += 1
                    elif ok:
                        self._warm_completed += 1
                    else:
                        self._warm_failed += 1

    def _warm_one(self, task: dict) -> bool:
        """Send one warm task to a worker chosen by shape affinity (so
        the same shape keeps warming the same worker's in-memory cache;
        component-compile tasks carry their owning shape's affinity and
        land on the same worker its representative will);
        survivors are tried in order when a worker dies."""
        with self._cond:
            workers = [w for w in self._workers if w.alive]
        if not workers:
            return False
        try:
            start = int(str(task["affinity"])[:8], 16) % len(workers)
        except (KeyError, ValueError):
            start = 0
        if task.get("kind") == "compile":
            request = {
                "op": "compile",
                "id": task["id"],
                "key": task["key"],
                "budget": task.get("budget"),
            }
            expected = "compiled"
        else:
            request = {
                "op": "warm",
                "id": task["id"],
                "engine": task["engine"],
                "circuit": task["circuit"],
                "players": task["players"],
                "options": task["options"],
            }
            expected = "warmed"
        try:
            budget = _budget_seconds(task["options"].compilation_budget())
        except Exception:
            budget = _budget_seconds(task.get("budget"))
        for offset in range(len(workers)):
            worker = workers[(start + offset) % len(workers)]
            try:
                reply = worker.request(
                    request,
                    timeout=deadline_for(self.op_timeout,
                                         budget_seconds=budget),
                )
            except Exception:
                self._discard_worker(worker)
                continue
            if reply.get("op") == expected:
                return bool(reply.get("ok"))
            return False  # out-of-protocol answer: don't retry elsewhere
        return False

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    @staticmethod
    def _batch_budget(tasks: list[dict]) -> float | None:
        """The batch's compilation budget, used to stretch per-op
        deadlines for ops that may legitimately compile that long."""
        for task in tasks:
            try:
                return _budget_seconds(task["options"].compilation_budget())
            except Exception:
                continue
        return None

    def _run_batch(self, message: dict) -> dict:
        engine = message["engine"]
        tasks = message["tasks"]
        min_workers = max(1, int(message.get("min_workers") or 1))
        wait_timeout = message.get("wait_timeout", 60.0)
        batched = bool(message.get("batched"))
        pipeline = message.get("pipeline")
        budget = self._batch_budget(tasks)
        component_timings: list[tuple[int, float]] = []
        with self._batch_lock:
            if self.wait_for_workers(min_workers, wait_timeout) < min_workers:
                raise _BatchFailed(
                    f"{min_workers} worker(s) required, "
                    f"{self.n_workers} connected after {wait_timeout}s"
                )
            if pipeline:
                results, component_timings = self._run_pipelined(
                    engine, tasks, batched, pipeline, budget
                )
            else:
                results = {}
                pending = list(tasks)
                # Redistribute until done or the fleet is gone:
                # survivors absorb the shards of any worker that died
                # mid-batch (they reload finished shapes from the
                # shared store, or recompile without one).  Each
                # failing round discards at least one dead worker, so
                # this terminates.
                while pending:
                    with self._cond:
                        workers = [w for w in self._workers if w.alive]
                    if not workers:
                        raise _BatchFailed(
                            f"no live workers for {len(pending)} task(s)"
                        )
                    pending = self._dispatch(
                        engine, pending, workers, results, batched, budget
                    )
            worker_stats, n_reporting = self._collect_stats()
            # The overlap is a coordinator-side observation (workers
            # cannot see each other's concurrency); fold the cumulative
            # total into the aggregate so it rides the same
            # latest-snapshot-wins path as every worker counter.
            worker_stats["pipeline_overlap_seconds"] = (
                worker_stats.get("pipeline_overlap_seconds", 0.0)
                + self._pipeline_overlap_total
            )
            # Resilience counters are coordinator-side observations
            # too; same fold, same remote_* surfacing on the client.
            with self._health_lock:
                for key, value in self._counters.items():
                    worker_stats[key] = worker_stats.get(key, 0) + value
                worker_stats["queue_depth"] = (
                    worker_stats.get("queue_depth", 0) + self._queue_depth
                )
        return {
            "op": "results",
            "results": results,
            "worker_stats": worker_stats,
            "workers": n_reporting,
            "component_timings": component_timings,
        }

    def _run_pipelined(
        self,
        engine: str,
        tasks: list[dict],
        batched: bool,
        pipeline: dict,
        batch_budget: float | None = None,
    ) -> tuple[dict[int, EngineResult], list[tuple[int, float]]]:
        """Execute one batch as a compile/execute pipeline.

        Instead of the two-phase warm-then-main schedule, every worker
        runs a pull loop over one shared work state: pending component
        compiles (client's critical-path order) first, then whatever
        stitch or sibling-group units became ready — so ``compile`` and
        ``task``/``task_group`` ops interleave per worker and execution
        streams while other shapes are still compiling.  A shape's
        representative (its *stitch* job) is gated on its components;
        its siblings are gated on the representative, exactly the
        invariants of the barrier schedule, minus the barrier.

        Dead workers: the failing pull thread requeues its unit and
        exits; the outer loop respawns pull threads over the survivors
        while work remains and fails the batch only when no workers
        are left (each failing round discards at least one worker).
        Compile *failures* (budget) are not retried — the owning
        shape's stitch job compiles inline and reports per answer,
        like the barrier schedule.

        Returns the results plus ``(component index, seconds)`` for
        every compile actually performed, which the client feeds to
        its cost model.
        """
        components = pipeline.get("components") or []
        needs = pipeline.get("needs") or {}
        budget = pipeline.get("budget")
        # Per-op deadlines: compiles may run for the whole budget, and
        # stitch ops may compile inline after a failed component — both
        # get the stretched deadline.  A hung worker trips the deadline
        # and flows into the requeue path below like any other death
        # (the "heartbeat-detected death mid-stitch" case: the idle
        # prober cannot see a busy link, so the dispatcher's deadline
        # is what detects it).
        op_deadline = deadline_for(self.op_timeout,
                                   budget_seconds=batch_budget)

        reps: dict[str, dict] = {}
        tails: dict[str, list[dict]] = {}
        order: list[str] = []
        for task in tasks:
            affinity = task.get("affinity") or f"task:{task['id']}"
            if affinity not in reps:
                reps[affinity] = task
                order.append(affinity)
            else:
                tails.setdefault(affinity, []).append(task)

        waiting: dict[str, set[int]] = {}
        dependents: dict[int, list[str]] = {}
        for affinity in order:
            indexes = needs.get(affinity)
            if not indexes:
                continue
            remaining = {
                index for index in indexes if 0 <= index < len(components)
            }
            if not remaining:
                continue
            waiting[affinity] = remaining
            for index in sorted(remaining):
                dependents.setdefault(index, []).append(affinity)

        state = threading.Condition()
        compile_queue: deque[int] = deque(
            index for index in range(len(components)) if index in dependents
        )
        ready: deque[tuple] = deque()
        for affinity in order:
            if affinity not in waiting:
                ready.append(("rep", affinity, False))
        results: dict[int, EngineResult] = {}
        compile_spans: list[tuple[float, float]] = []
        exec_spans: list[tuple[float, float]] = []
        component_timings: list[tuple[int, float]] = []
        inflight = [0]  # units a pull thread holds outside the queues
        compiling = [0]  # of which, component compiles
        compile_cap = [1]  # rebound per round to live workers - 1

        def tail_units(affinity: str) -> list[tuple]:
            siblings = tails.get(affinity, [])
            if not siblings:
                return []
            if batched and len(siblings) > 1:
                return [("group", affinity, siblings)]
            return [("single", affinity, task) for task in siblings]

        def execute(worker: _WorkerLink, unit: tuple) -> None:
            """One unit round-trip plus its completion bookkeeping."""
            kind = unit[0]
            started = time.perf_counter()
            if kind == "compile":
                index = unit[1]
                reply = worker.request({
                    "op": "compile",
                    "id": f"component:{index}",
                    "key": components[index]["key"],
                    "budget": budget,
                }, timeout=deadline_for(self.op_timeout,
                                        budget_seconds=_budget_seconds(budget))
                   if budget is not None else op_deadline)
                finished = time.perf_counter()
                if reply.get("op") != "compiled":
                    raise ConnectionError(
                        f"worker {worker.peer} answered out of protocol"
                    )
                with state:
                    compile_spans.append((started, finished))
                    if reply.get("compiled"):
                        component_timings.append(
                            (index, float(reply.get("seconds") or 0.0))
                        )
                    for affinity in dependents.get(index, ()):
                        remaining = waiting.get(affinity)
                        if remaining is None:
                            continue
                        remaining.discard(index)
                        if not remaining:
                            del waiting[affinity]
                            ready.append(("rep", affinity, True))
                return
            if kind == "rep" or kind == "single":
                gated = unit[2] is True if kind == "rep" else False
                task = reps[unit[1]] if kind == "rep" else unit[2]
                request = {
                    "op": "task",
                    "id": task["id"],
                    "engine": engine,
                    "circuit": task["circuit"],
                    "players": task["players"],
                    "options": task["options"],
                }
                if gated:
                    request["stitch"] = True
                reply = worker.request(request, timeout=op_deadline)
                finished = time.perf_counter()
                if (reply.get("op") != "result"
                        or reply.get("id") != task["id"]):
                    raise ConnectionError(
                        f"worker {worker.peer} answered out of protocol"
                    )
                with state:
                    exec_spans.append((started, finished))
                    results[task["id"]] = reply["result"]
                    if kind == "rep":
                        ready.extend(tail_units(unit[1]))
                return
            # kind == "group"
            group = unit[2]
            reply = worker.request({
                "op": "task_group",
                "engine": engine,
                "tasks": [
                    {key: task[key] for key in
                     ("id", "circuit", "players", "options")}
                    for task in group
                ],
            }, timeout=deadline_for(self.op_timeout,
                                    budget_seconds=batch_budget,
                                    items=len(group)))
            finished = time.perf_counter()
            replies = reply.get("results")
            if (reply.get("op") != "result_group"
                    or not isinstance(replies, dict)
                    or set(replies) != {task["id"] for task in group}):
                raise ConnectionError(
                    f"worker {worker.peer} answered out of protocol"
                )
            with state:
                exec_spans.append((started, finished))
                results.update(replies)

        def pull(worker: _WorkerLink) -> None:
            while True:
                with state:
                    while True:
                        # Compiles first (critical-path order), but
                        # never with the whole fleet at once while
                        # execution-ready units exist — otherwise a
                        # compile backlog longer than the fleet turns
                        # the pipeline back into a barrier.
                        if compile_queue and (
                                not ready or compiling[0] < compile_cap[0]):
                            unit = ("compile", compile_queue.popleft())
                            break
                        if ready:
                            unit = ready.popleft()
                            break
                        if inflight[0] == 0:
                            return  # no work left anywhere: batch done
                        state.wait()
                    inflight[0] += 1
                    if unit[0] == "compile":
                        compiling[0] += 1
                try:
                    execute(worker, unit)
                except Exception:
                    # Requeue the unit for a survivor, then drop the
                    # worker.  Order matters for the lock graph: the
                    # state condition is never held across
                    # _discard_worker (which takes self._cond).
                    with state:
                        if unit[0] == "compile":
                            compile_queue.appendleft(unit[1])
                            compiling[0] -= 1
                        else:
                            ready.appendleft(unit)
                        inflight[0] -= 1
                        state.notify_all()
                    self._discard_worker(worker)
                    return
                with state:
                    inflight[0] -= 1
                    if unit[0] == "compile":
                        compiling[0] -= 1
                    state.notify_all()

        while True:
            with state:
                if not compile_queue and not ready and inflight[0] == 0:
                    break
            with self._cond:
                workers = [w for w in self._workers if w.alive]
            if not workers:
                with state:
                    remaining = (len(compile_queue) + len(ready)
                                 + inflight[0])
                raise _BatchFailed(
                    f"no live workers for {remaining} pipelined unit(s)"
                )
            with state:
                compile_cap[0] = max(1, len(workers) - 1)
            threads = [
                threading.Thread(target=pull, args=(worker,), daemon=True)
                for worker in workers
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        # Mutated under _batch_lock only (one batch at a time), so no
        # extra lock is needed here.
        self._pipeline_overlap_total += interval_overlap(
            compile_spans, exec_spans
        )
        return results, component_timings

    def _dispatch(
        self,
        engine: str,
        tasks: list[dict],
        workers: list[_WorkerLink],
        results: dict[int, EngineResult],
        batched: bool = False,
        budget: float | None = None,
    ) -> list[dict]:
        """Run one placement round; returns the tasks that failed on a
        dead worker (distinct result keys make the shared dict safe)."""
        shards = assign_shards(
            tasks, len(workers), key=lambda task: task["affinity"]
        )
        failed: list[dict] = []
        threads = []
        for worker, shard in zip(workers, shards):
            if not shard:
                continue
            thread = threading.Thread(
                target=self._run_shard,
                args=(engine, worker, shard, results, failed, batched,
                      budget),
                daemon=True,
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
        return failed

    def _run_shard(
        self,
        engine: str,
        worker: _WorkerLink,
        shard: list[dict],
        results: dict[int, EngineResult],
        failed: list[dict],
        batched: bool = False,
        budget: float | None = None,
    ) -> None:
        # With a batched plan each consecutive same-affinity run ships
        # as one task_group call (singletons stay plain tasks, keeping
        # the wire compatible with pre-batching workers for them);
        # otherwise every task is its own round-trip.  Dead-worker
        # redistribution is unchanged: everything not yet answered goes
        # back to the pending list.
        groups = _affinity_runs(shard) if batched else [[t] for t in shard]
        done = 0
        for group in groups:
            try:
                if len(group) == 1:
                    task = group[0]
                    reply = worker.request({
                        "op": "task",
                        "id": task["id"],
                        "engine": engine,
                        "circuit": task["circuit"],
                        "players": task["players"],
                        "options": task["options"],
                    }, timeout=deadline_for(self.op_timeout,
                                            budget_seconds=budget))
                    if (reply.get("op") != "result"
                            or reply.get("id") != task["id"]):
                        raise ConnectionError(
                            f"worker {worker.peer} answered out of protocol"
                        )
                    results[task["id"]] = reply["result"]
                else:
                    reply = worker.request({
                        "op": "task_group",
                        "engine": engine,
                        "tasks": [
                            {key: task[key] for key in
                             ("id", "circuit", "players", "options")}
                            for task in group
                        ],
                    }, timeout=deadline_for(self.op_timeout,
                                            budget_seconds=budget,
                                            items=len(group)))
                    replies = reply.get("results")
                    if (reply.get("op") != "result_group"
                            or not isinstance(replies, dict)
                            or set(replies)
                            != {task["id"] for task in group}):
                        raise ConnectionError(
                            f"worker {worker.peer} answered out of protocol"
                        )
                    results.update(replies)
            except Exception:
                self._discard_worker(worker)
                failed.extend(shard[done:])
                return
            done += len(group)

    def _collect_stats(self) -> tuple[dict[str, float], int]:
        """Sum every live worker's cache counters (best-effort).

        Values are added as-is: integer counters stay integers, float
        counters (``pipeline_overlap_seconds``) keep their fractional
        part instead of being truncated."""
        totals: dict[str, float] = {}
        reporting = 0
        with self._cond:
            workers = [w for w in self._workers if w.alive]
        for worker in workers:
            try:
                reply = worker.request({"op": "stats"},
                                       timeout=self.op_timeout)
                stats = reply.get("stats", {})
            except Exception:
                self._discard_worker(worker)
                continue
            reporting += 1
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals, reporting

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        host, port = self.address
        return f"Coordinator({host}:{port}, workers={self.n_workers})"
