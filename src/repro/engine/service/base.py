"""The transport interface: run a batch plan somewhere.

Transports are long-lived — an
:class:`~repro.engine.session.ExplainSession` creates each kind at most
once and reuses it for every ``explain_many`` call, which is where the
service layer's throughput comes from: pools stay warm, workers keep
their per-process caches, and only :meth:`Transport.close` (or the
session's context-manager exit) tears anything down.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..base import EngineResult
    from ..scheduler import BatchPlan


class TransportError(RuntimeError):
    """The transport could not complete a batch (e.g. no live workers,
    coordinator unreachable).  Engine-level failures are *not* transport
    errors — they come back as per-job ``EngineResult`` statuses."""


class FleetUnavailable(TransportError):
    """The coordinator could not be reached (connect failed, link died
    mid-request, or every retry was exhausted).  This is the trigger
    for the ``degrade="local"`` fallback: the fleet is *gone*, not
    merely busy."""


class FleetBusy(TransportError):
    """The coordinator's admission queue is full and it rejected the
    request with an explicit ``busy`` reply.  Retryable by design —
    the fleet is alive, just saturated; clients back off rather than
    degrade."""


class Transport(ABC):
    """Executes :class:`~repro.engine.scheduler.BatchPlan` objects.

    Implementations must honour the plan's one ordering constraint
    (warm wave strictly before the main wave, or per-shape
    representative-first, whichever the backend can guarantee) and must
    stay usable after a failed batch: an exception from
    :meth:`run_batch` may abandon that batch's pending work but must
    not leak it — the next call starts clean.
    """

    #: Registry key; matches the session's ``executor=`` argument.
    kind: ClassVar[str]

    #: Aggregated remote-side cache counters of the last batch (socket
    #: transport only; local transports leave it empty).
    remote_stats: dict[str, int]

    #: Client-side resilience counters, cumulative over the transport's
    #: life (``retries``, ``reconnects``, ``degraded_batches``,
    #: ``busy_rejections``, ``pool_restarts`` — whichever apply).  The
    #: session merges them into ``session.stats`` so ``bench --json``
    #: reports them next to the ``remote_*`` fleet counters.
    service_stats: dict[str, int]

    def __init__(self) -> None:
        self.remote_stats = {}
        self.service_stats = {}

    def _count(self, key: str, n: int = 1) -> None:
        """Bump one :attr:`service_stats` counter."""
        self.service_stats[key] = self.service_stats.get(key, 0) + n

    @abstractmethod
    def run_batch(self, plan: "BatchPlan") -> dict[int, "EngineResult"]:
        """Execute every job of ``plan``; results keyed by job index."""

    def close(self) -> None:
        """Release pools/connections.  Idempotent."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} kind={self.kind!r}>"
