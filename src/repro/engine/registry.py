"""Name → engine registry.

Every method of the paper registers here (see
:mod:`repro.engine.adapters`), and every entry point — the CLI, the
benchmark harness, :func:`repro.core.attribution.attribute`, the
examples — resolves methods with :func:`get_engine` instead of keeping
its own if/elif chain.  Registering a new backend is one decorated
class:

>>> @register_engine
... class MyEngine(Engine):
...     name = "mine"
...     exact = False
...     def explain_circuit(self, circuit, players, options=None): ...
"""

from __future__ import annotations

from typing import Callable

from .base import Engine

#: Canonical name -> engine class, in registration order.
_REGISTRY: dict[str, type[Engine]] = {}
#: Alias -> canonical name.
_ALIASES: dict[str, str] = {}
#: Shared stateless instances, created on first use.
_INSTANCES: dict[str, Engine] = {}


def register_engine(
    cls: type[Engine] | None = None, *, aliases: tuple[str, ...] = ()
) -> type[Engine] | Callable[[type[Engine]], type[Engine]]:
    """Class decorator adding an :class:`Engine` subclass under its
    ``name`` (plus optional ``aliases``).

    Re-registering a name replaces the previous engine — deliberate, so
    applications can override a stock method with a tuned backend.
    """

    def _register(engine_cls: type[Engine]) -> type[Engine]:
        name = getattr(engine_cls, "name", None)
        if not isinstance(name, str) or not name:
            raise ValueError(
                f"engine class {engine_cls.__name__} must define a non-empty "
                "string `name`"
            )
        _REGISTRY[name] = engine_cls
        _INSTANCES.pop(name, None)
        for alias in aliases:
            _ALIASES[alias] = name
        return engine_cls

    if cls is not None:
        return _register(cls)
    return _register


def available_engines() -> tuple[str, ...]:
    """Canonical engine names, in registration order."""
    return tuple(_REGISTRY)


def get_engine(name: str) -> Engine:
    """The shared instance of the engine registered under ``name``.

    Raises :class:`ValueError` (listing the available names) for
    unknown names, which callers surface directly to users.
    """
    canonical = _ALIASES.get(name, name)
    cls = _REGISTRY.get(canonical)
    if cls is None:
        raise ValueError(
            f"unknown engine {name!r}; choose from {available_engines()}"
        )
    instance = _INSTANCES.get(canonical)
    if instance is None:
        instance = cls()
        _INSTANCES[canonical] = instance
    return instance
