"""Pluggable engine subsystem: every Shapley method behind one seam.

* :mod:`~repro.engine.base` — the :class:`Engine` interface,
  :class:`EngineOptions`, :class:`EngineResult`;
* :mod:`~repro.engine.registry` — ``get_engine(name)`` /
  ``register_engine`` / ``available_engines()``;
* :mod:`~repro.engine.adapters` — the paper's five methods as engines;
* :mod:`~repro.engine.cache` — the :class:`ArtifactCache` memoizing
  Tseytin CNFs and compiled d-DNNFs across isomorphic lineages;
* :mod:`~repro.engine.session` — :class:`ExplainSession` with the
  batched, deduplicating :meth:`~ExplainSession.explain_many`.

See README.md ("Engine architecture") for the 30-second tour and the
steps to register a new backend.
"""

from .base import DEFAULT_OPTIONS, Engine, EngineOptions, EngineResult
from .cache import ArtifactCache, CacheStats, CircuitArtifacts
from .registry import available_engines, get_engine, register_engine
from .adapters import (
    CnfProxyEngine,
    ExactEngine,
    HybridEngine,
    KernelShapEngine,
    MonteCarloEngine,
)
from .session import ExplainSession

__all__ = [
    "DEFAULT_OPTIONS", "Engine", "EngineOptions", "EngineResult",
    "ArtifactCache", "CacheStats", "CircuitArtifacts",
    "available_engines", "get_engine", "register_engine",
    "CnfProxyEngine", "ExactEngine", "HybridEngine",
    "KernelShapEngine", "MonteCarloEngine",
    "ExplainSession",
]
