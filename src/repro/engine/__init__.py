"""Pluggable engine subsystem: every Shapley method behind one seam.

* :mod:`~repro.engine.base` — the :class:`Engine` interface,
  :class:`EngineOptions`, :class:`EngineResult`;
* :mod:`~repro.engine.registry` — ``get_engine(name)`` /
  ``register_engine`` / ``available_engines()``;
* :mod:`~repro.engine.adapters` — the paper's five methods as engines;
* :mod:`~repro.engine.cache` — the :class:`ArtifactCache` memoizing
  Tseytin CNFs and compiled d-DNNFs across isomorphic lineages;
* :mod:`~repro.engine.store` — the disk-backed
  :class:`PersistentArtifactStore`, the cache's second tier sharing
  canonical artifacts across processes and runs;
* :mod:`~repro.engine.scheduler` — pure placement logic: shape dedup,
  warm-up planning (:func:`plan_batch`) and shard assignment with
  shape affinity (:func:`assign_shards`);
* :mod:`~repro.engine.service` — the transport layer executing batch
  plans: in-process threads, a persistent process pool, and the socket
  coordinator/worker pair behind ``repro serve`` / ``repro worker``;
* :mod:`~repro.engine.session` — :class:`ExplainSession`, a thin
  context-managed facade binding a database, an engine, a cache, and a
  transport for batched :meth:`~ExplainSession.explain_many` calls.

See README.md ("Engine architecture" and "Running a shard service")
for the 30-second tour and the steps to register a new backend.
"""

from .base import (
    DEFAULT_OPTIONS,
    Engine,
    EngineOptions,
    EngineResult,
    derive_answer_seed,
)
from .cache import ArtifactCache, CacheStats, CircuitArtifacts
from .store import GcReport, PersistentArtifactStore, StoreEntry, StoreStats
from .registry import available_engines, get_engine, register_engine
from .scheduler import BatchPlan, Job, assign_shards, plan_batch
from .service import (
    Backoff,
    Coordinator,
    FaultPlan,
    FaultRule,
    FleetBusy,
    FleetUnavailable,
    InProcessTransport,
    ProcessPoolTransport,
    SocketTransport,
    Transport,
    TransportError,
    run_worker,
)
from .adapters import (
    CnfProxyEngine,
    ExactEngine,
    HybridEngine,
    KernelShapEngine,
    MonteCarloEngine,
)
from .session import ExplainSession

__all__ = [
    "DEFAULT_OPTIONS", "Engine", "EngineOptions", "EngineResult",
    "derive_answer_seed",
    "ArtifactCache", "CacheStats", "CircuitArtifacts",
    "PersistentArtifactStore", "StoreStats", "StoreEntry", "GcReport",
    "available_engines", "get_engine", "register_engine",
    "BatchPlan", "Job", "assign_shards", "plan_batch",
    "Transport", "TransportError", "FleetBusy", "FleetUnavailable",
    "InProcessTransport",
    "ProcessPoolTransport", "SocketTransport", "Coordinator", "run_worker",
    "Backoff", "FaultPlan", "FaultRule",
    "CnfProxyEngine", "ExactEngine", "HybridEngine",
    "KernelShapEngine", "MonteCarloEngine",
    "ExplainSession",
]
