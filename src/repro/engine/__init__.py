"""Pluggable engine subsystem: every Shapley method behind one seam.

* :mod:`~repro.engine.base` — the :class:`Engine` interface,
  :class:`EngineOptions`, :class:`EngineResult`;
* :mod:`~repro.engine.registry` — ``get_engine(name)`` /
  ``register_engine`` / ``available_engines()``;
* :mod:`~repro.engine.adapters` — the paper's five methods as engines;
* :mod:`~repro.engine.cache` — the :class:`ArtifactCache` memoizing
  Tseytin CNFs and compiled d-DNNFs across isomorphic lineages;
* :mod:`~repro.engine.store` — the disk-backed
  :class:`PersistentArtifactStore`, the cache's second tier sharing
  canonical artifacts across processes and runs;
* :mod:`~repro.engine.session` — :class:`ExplainSession` with the
  batched, deduplicating :meth:`~ExplainSession.explain_many` and its
  thread/process executors.

See README.md ("Engine architecture") for the 30-second tour and the
steps to register a new backend.
"""

from .base import (
    DEFAULT_OPTIONS,
    Engine,
    EngineOptions,
    EngineResult,
    derive_answer_seed,
)
from .cache import ArtifactCache, CacheStats, CircuitArtifacts
from .store import PersistentArtifactStore, StoreStats
from .registry import available_engines, get_engine, register_engine
from .adapters import (
    CnfProxyEngine,
    ExactEngine,
    HybridEngine,
    KernelShapEngine,
    MonteCarloEngine,
)
from .session import ExplainSession

__all__ = [
    "DEFAULT_OPTIONS", "Engine", "EngineOptions", "EngineResult",
    "derive_answer_seed",
    "ArtifactCache", "CacheStats", "CircuitArtifacts",
    "PersistentArtifactStore", "StoreStats",
    "available_engines", "get_engine", "register_engine",
    "CnfProxyEngine", "ExactEngine", "HybridEngine",
    "KernelShapEngine", "MonteCarloEngine",
    "ExplainSession",
]
