"""The paper's five methods as registered engines.

Each adapter wraps the corresponding :mod:`repro.core` implementation
without changing its semantics; the exact, hybrid, and CNF-proxy
adapters additionally route their compilation work through the shared
:class:`~repro.engine.cache.ArtifactCache` when
:attr:`~repro.engine.base.EngineOptions.cache` is set.

Only ``repro.core`` *submodules* are imported here (never the package),
so the adapters can be imported while ``repro.core.__init__`` is still
initializing — attribution routes through this registry.
"""

from __future__ import annotations

import time
from typing import Hashable, Sequence

from ..circuits.circuit import Circuit
from ..core.cnf_proxy import cnf_proxy_from_circuit, cnf_proxy_values
from ..core.hybrid import hybrid_shapley
from ..core.kernel_shap import kernel_shap_values
from ..core.monte_carlo import monte_carlo_shapley
from ..core.pipeline import run_exact, run_exact_batch
from .base import DEFAULT_OPTIONS, Engine, EngineOptions, EngineResult
from .registry import register_engine


@register_engine
class ExactEngine(Engine):
    """Algorithm 1 over a compiled d-DNNF (the paper's Figure 3)."""

    name = "exact"
    exact = True
    uses_cache = True
    supports_batch = True

    def explain_circuit(
        self,
        circuit: Circuit,
        players: Sequence[Hashable],
        options: EngineOptions | None = None,
    ) -> EngineResult:
        options = options or DEFAULT_OPTIONS
        start = time.perf_counter()
        outcome = run_exact(
            circuit,
            players,
            budget=options.compilation_budget(),
            method=options.mode,
            cache=options.cache,
            artifacts=options.artifacts,
            numeric_backend=options.numeric_backend,
            compile_jobs=options.compile_jobs,
            fastpath_budget_bytes=options.fastpath_budget_bytes,
        )
        seconds = time.perf_counter() - start
        return EngineResult(
            self.name, outcome.values, outcome.ok, outcome.status, seconds,
            detail=outcome, error=outcome.error,
        )

    def explain_batch(
        self,
        requests: Sequence[tuple[Circuit, Sequence[Hashable],
                                 EngineOptions | None]],
    ) -> list[EngineResult]:
        """One batched pass over a same-shape answer group.

        Budget/timeout/backend knobs come from the first request's
        options (sessions hand every member of a shape group the same
        options, cache included); per-answer artifacts handles are
        honoured individually.  Falls back to the per-answer loop for
        non-derivative modes, disabled batching, and singleton groups.
        """
        if not requests:
            return []
        options = requests[0][2] or DEFAULT_OPTIONS
        if (
            options.mode != "derivative"
            or not options.batch_execution
            or len(requests) == 1
        ):
            return super().explain_batch(requests)
        start = time.perf_counter()
        outcomes = run_exact_batch(
            [request[0] for request in requests],
            [request[1] for request in requests],
            budget=options.compilation_budget(),
            method=options.mode,
            cache=options.cache,
            artifacts_list=[
                (request[2] or DEFAULT_OPTIONS).artifacts
                for request in requests
            ],
            numeric_backend=options.numeric_backend,
            compile_jobs=options.compile_jobs,
            fastpath_budget_bytes=options.fastpath_budget_bytes,
        )
        seconds = (time.perf_counter() - start) / len(requests)
        return [
            EngineResult(
                self.name, outcome.values, outcome.ok, outcome.status,
                seconds, detail=outcome, error=outcome.error,
            )
            for outcome in outcomes
        ]


@register_engine
class HybridEngine(Engine):
    """Exact-within-timeout, CNF Proxy fallback (Section 6.3)."""

    name = "hybrid"
    exact = False  # per-result: EngineResult.exact reports which branch answered
    uses_cache = True

    def explain_circuit(
        self,
        circuit: Circuit,
        players: Sequence[Hashable],
        options: EngineOptions | None = None,
    ) -> EngineResult:
        options = options or DEFAULT_OPTIONS
        budget = options.budget
        result = hybrid_shapley(
            circuit,
            players,
            timeout=options.hybrid_timeout(),
            max_nodes=budget.max_nodes if budget is not None else None,
            method=options.mode,
            cache=options.cache,
            artifacts=options.artifacts,
            numeric_backend=options.numeric_backend,
        )
        return EngineResult(
            self.name, result.values, result.is_exact, "ok",
            result.seconds, detail=result,
        )


@register_engine(aliases=("cnf_proxy",))
class CnfProxyEngine(Engine):
    """Algorithm 2: the clause-width proxy over the Tseytin CNF."""

    name = "proxy"
    exact = False
    uses_cache = True

    def explain_circuit(
        self,
        circuit: Circuit,
        players: Sequence[Hashable],
        options: EngineOptions | None = None,
    ) -> EngineResult:
        options = options or DEFAULT_OPTIONS
        start = time.perf_counter()
        if options.artifacts is not None:
            values = cnf_proxy_values(options.artifacts.cnf(), players)
        elif options.cache is not None:
            cnf = options.cache.cnf_for(circuit)
            values = cnf_proxy_values(cnf, players)
        else:
            values = cnf_proxy_from_circuit(circuit, players)
        seconds = time.perf_counter() - start
        return EngineResult(self.name, values, False, "ok", seconds)


@register_engine(aliases=("mc",))
class MonteCarloEngine(Engine):
    """Permutation sampling (Mann & Shapley), bit-parallel prefixes."""

    name = "monte_carlo"
    exact = False

    def explain_circuit(
        self,
        circuit: Circuit,
        players: Sequence[Hashable],
        options: EngineOptions | None = None,
    ) -> EngineResult:
        options = options or DEFAULT_OPTIONS
        start = time.perf_counter()
        values = monte_carlo_shapley(
            circuit,
            players,
            samples_per_fact=options.samples_per_fact,
            rng=options.rng(),
        )
        seconds = time.perf_counter() - start
        return EngineResult(self.name, values, False, "ok", seconds)


@register_engine
class KernelShapEngine(Engine):
    """Kernel SHAP: weighted linear regression on sampled coalitions."""

    name = "kernel_shap"
    exact = False

    def explain_circuit(
        self,
        circuit: Circuit,
        players: Sequence[Hashable],
        options: EngineOptions | None = None,
    ) -> EngineResult:
        options = options or DEFAULT_OPTIONS
        start = time.perf_counter()
        values = kernel_shap_values(
            circuit,
            players,
            samples_per_fact=options.samples_per_fact,
            rng=options.rng(),
        )
        seconds = time.perf_counter() - start
        return EngineResult(self.name, values, False, "ok", seconds)
