"""Artifact cache: compile each distinct lineage *shape* once.

Answer tuples of the same query typically have isomorphic lineages —
the same circuit with different fact labels.  The exact pipeline spends
almost all of its time in knowledge compilation, which branches on the
CNF's integer literals and never looks at labels, so the compiled
d-DNNF of two isomorphic lineages differs only by a variable renaming.

:class:`ArtifactCache` exploits this: artifacts (Tseytin CNFs,
auxiliary-eliminated d-DNNFs, and their compiled
:class:`~repro.core.numerics.tape.GateTape`s) are stored under the
circuit's canonical
:meth:`~repro.circuits.circuit.Circuit.structural_signature` with
variable labels replaced by canonical indices, and renamed back to the
request's actual labels on every hit.  Isomorphic lineages across
answer tuples — and across methods sharing one cache — therefore
compile once.  The renamed d-DNNF represents exactly the same Boolean
function over the requested labels, so Algorithm 1 returns Shapley
values identical to the uncached path.

With a :class:`~repro.engine.store.PersistentArtifactStore` attached,
the cache becomes the first tier of a two-tier hierarchy: in-memory
misses consult the disk store before compiling, and fresh compilations
are written back, extending compile-once across processes and runs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Mapping

import time

from ..circuits.circuit import VAR, Circuit
from ..circuits.cnf import Cnf
from ..circuits.dnnf import eliminate_auxiliary
from ..circuits.tseytin import tseytin_transform
from ..compiler.knowledge import (
    BudgetExceeded,
    CompilationBudget,
    CompilationStats,
    ComponentMemo,
    compile_cnf,
    plan_components,
)
from ..core.numerics.tape import GateTape, compile_tape
from .store import PersistentArtifactStore


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`ArtifactCache`.

    ``compile_calls`` counts actual invocations of the knowledge
    compiler — the acceptance metric for lineage reuse: on a workload
    with repeated lineage shapes it stays well below the number of
    answers explained.
    """

    cnf_hits: int = 0
    cnf_misses: int = 0
    ddnnf_hits: int = 0
    ddnnf_misses: int = 0
    tape_hits: int = 0
    tape_misses: int = 0
    compile_calls: int = 0
    compile_failures: int = 0
    #: Gate-tape lowerings actually performed (the tape analogue of
    #: ``compile_calls``): zero on a warm store means every shape's
    #: traversal was skipped entirely.
    tape_compilations: int = 0
    evictions: int = 0
    #: Machine-width derivative passes (level-scheduled int64/float64/
    #: CRT execution) vs. per-shape falls back to the interpreted exact
    #: kernels — the acceptance counters of the PR 5 fast path.
    #: ``fastpath_fallbacks`` is the total; the three reason counters
    #: split it: a runtime overflow sentinel tripped, the shape's
    #: bounds/structure were ineligible a priori, or the SoA value
    #: buffers exceeded the (configurable) memory budget.
    fastpath_hits: int = 0
    fastpath_fallbacks: int = 0
    fastpath_overflow_fallbacks: int = 0
    fastpath_ineligible_fallbacks: int = 0
    fastpath_budget_fallbacks: int = 0
    #: Cross-answer batched execution (the PR 8 tentpole): same-shape
    #: answer groups whose Algorithm-1 sweeps ran as one batched
    #: machine-width pass, and the answers they covered.
    batched_groups: int = 0
    batched_answers: int = 0
    #: Cross-shape sub-circuit memoization (the PR 6 cold-path tier):
    #: connected components looked up by canonical clause-set signature.
    #: ``component_hits`` were stitched from memory or disk instead of
    #: recompiled; ``component_compilations`` counts standalone
    #: canonical compiles actually performed fleet-wide through this
    #: cache.
    component_hits: int = 0
    component_misses: int = 0
    component_compilations: int = 0
    component_evictions: int = 0
    #: Store-loaded artifacts rejected by ``verify_on_load`` spot
    #: checks (each one is recompiled instead of trusted); non-zero
    #: values flow into ``session.stats`` / socket ``remote_*``
    #: aggregates, flagging a poisoned store fleet-wide.
    verifier_violations: int = 0
    #: Pipelined cold-batch execution (the PR 9 tentpole).
    #: ``component_pass_compiles`` counts standalone compiles performed
    #: by the fleet-wide one-pass component phase (a subset of
    #: ``component_compilations``); ``stitch_jobs`` the per-shape stitch
    #: jobs dispatched once their components landed;
    #: ``pipeline_overlap_seconds`` the wall-clock during which compile
    #: and execute work genuinely overlapped (union-interval
    #: intersection — the seconds the old warm-wave barrier wasted).
    component_pass_compiles: int = 0
    stitch_jobs: int = 0
    pipeline_overlap_seconds: float = 0.0

    @property
    def hits(self) -> int:
        return self.cnf_hits + self.ddnnf_hits + self.tape_hits

    @property
    def misses(self) -> int:
        return self.cnf_misses + self.ddnnf_misses + self.tape_misses

    def as_dict(self) -> dict[str, int]:
        return {
            "cnf_hits": self.cnf_hits,
            "cnf_misses": self.cnf_misses,
            "ddnnf_hits": self.ddnnf_hits,
            "ddnnf_misses": self.ddnnf_misses,
            "tape_hits": self.tape_hits,
            "tape_misses": self.tape_misses,
            "compile_calls": self.compile_calls,
            "compile_failures": self.compile_failures,
            "tape_compilations": self.tape_compilations,
            "evictions": self.evictions,
            "fastpath_hits": self.fastpath_hits,
            "fastpath_fallbacks": self.fastpath_fallbacks,
            "fastpath_overflow_fallbacks": self.fastpath_overflow_fallbacks,
            "fastpath_ineligible_fallbacks":
                self.fastpath_ineligible_fallbacks,
            "fastpath_budget_fallbacks": self.fastpath_budget_fallbacks,
            "batched_groups": self.batched_groups,
            "batched_answers": self.batched_answers,
            "component_hits": self.component_hits,
            "component_misses": self.component_misses,
            "component_compilations": self.component_compilations,
            "component_evictions": self.component_evictions,
            "verifier_violations": self.verifier_violations,
            "component_pass_compiles": self.component_pass_compiles,
            "stitch_jobs": self.stitch_jobs,
            "pipeline_overlap_seconds": self.pipeline_overlap_seconds,
        }


class _Entry:
    """Canonical artifacts of one lineage shape (labels = 0..k-1)."""

    __slots__ = ("cnf", "ddnnf", "tape")

    def __init__(self) -> None:
        self.cnf: Cnf | None = None
        self.ddnnf: Circuit | None = None
        self.tape: GateTape | None = None


def _relabel_cnf(cnf: Cnf, mapping: Mapping[Hashable, Hashable]) -> Cnf:
    """A copy of ``cnf`` with labels translated through ``mapping``.

    Clause tuples are shared (immutable); only the label dictionaries
    are rebuilt, so relabelling is O(#labelled vars), not O(formula).
    """
    clone = Cnf.__new__(Cnf)
    clone.num_vars = cnf.num_vars
    clone.clauses = list(cnf.clauses)
    clone.labels = {var: mapping[lbl] for var, lbl in cnf.labels.items()}
    clone._by_label = {lbl: var for var, lbl in clone.labels.items()}
    return clone


class _CacheComponentMemo(ComponentMemo):
    """The cache-backed :class:`ComponentMemo` handed to the compiler.

    Two tiers mirror the whole-shape artifacts: a bounded in-memory
    LRU of component circuits (``component_cache_size`` slots) over the
    cache's persistent store (``.comp`` artifacts), if attached.  A
    disk hit is promoted into memory; a publish lands in both.  All
    traffic is counted in the cache's ``component_*`` stats, which is
    how the counters reach ``session.stats`` and socket-worker
    ``remote_*`` aggregates without any extra plumbing.
    """

    def __init__(self, cache: "ArtifactCache") -> None:
        self._cache = cache
        self._entries: OrderedDict[tuple, Circuit] = OrderedDict()

    def __len__(self) -> int:
        with self._cache._lock:
            return len(self._entries)

    def lookup(self, key: tuple) -> Circuit | None:
        cache = self._cache
        with cache._lock:
            circuit = self._entries.get(key)
            if circuit is not None:
                self._entries.move_to_end(key)
                cache.stats.component_hits += 1
                return circuit
        store = cache.store
        if store is not None:
            circuit = store.load_component(key)
            if (
                circuit is not None
                and _valid_component(circuit, key)
                and cache.verify_loaded("comp", circuit)
            ):
                with cache._lock:
                    cache.stats.component_hits += 1
                self._insert(key, circuit)
                return circuit
        with cache._lock:
            cache.stats.component_misses += 1
        return None

    def publish(self, key: tuple, circuit: Circuit) -> None:
        cache = self._cache
        with cache._lock:
            cache.stats.component_compilations += 1
        self._insert(key, circuit)
        store = cache.store
        if store is not None:
            store.store_component(key, circuit)

    def _insert(self, key: tuple, circuit: Circuit) -> None:
        cache = self._cache
        bound = cache.component_cache_size
        if bound == 0:
            return
        with cache._lock:
            self._entries[key] = circuit
            self._entries.move_to_end(key)
            if bound is not None:
                while len(self._entries) > bound:
                    self._entries.popitem(last=False)
                    cache.stats.component_evictions += 1

    def clear(self) -> None:
        with self._cache._lock:
            self._entries.clear()


def _valid_component(circuit: Circuit, key: tuple) -> bool:
    """Sanity-check a store-loaded component circuit before stitching.

    The circuit's variable labels must be canonical ints within the
    key's variable range — anything else would crash (or silently
    corrupt) the import.  Structural validity is already guaranteed by
    ``Circuit.from_payload``; a bad label table here means the file was
    forged or damaged in a way the checksum missed, so treat it as a
    miss and let the caller recompile.
    """
    num_vars = max(
        (abs(lit) for clause in key for lit in clause), default=0
    )
    for gate in range(len(circuit)):
        if circuit.kind(gate) == VAR:
            label = circuit.label(gate)
            if not isinstance(label, int) or not 1 <= label <= num_vars:
                return False
    return True


class CircuitArtifacts:
    """Handle binding one circuit to its cache slot.

    Obtained from :meth:`ArtifactCache.open`; computes the canonical
    signature once and serves both artifacts from it.  The handle can
    be threaded to an engine through
    :attr:`~repro.engine.base.EngineOptions.artifacts` so the (single)
    canonicalization pass it already paid is never repeated downstream.
    """

    __slots__ = (
        "_cache", "_entry", "signature", "labels", "_flat", "source_size",
        "compile_stats", "tape_lower_seconds",
    )

    def __init__(
        self,
        cache: "ArtifactCache",
        entry: _Entry,
        signature: tuple,
        labels: tuple,
        flat: Circuit,
        source_size: int,
    ) -> None:
        self._cache = cache
        self._entry = entry
        self.signature = signature
        self.labels = labels
        self._flat = flat
        #: gate count of the constant-propagated (pre-flatten) circuit,
        #: mirroring what the uncached pipeline reports as circuit_size
        self.source_size = source_size
        #: :class:`CompilationStats` of the d-DNNF compile this handle
        #: performed (``None`` when every request hit a cache tier) —
        #: the profile split reads component/stitch seconds from here.
        self.compile_stats: CompilationStats | None = None
        #: Wall-clock of the tape lowering this handle performed.
        self.tape_lower_seconds: float = 0.0

    @property
    def cache(self) -> "ArtifactCache":
        """The cache this handle is bound to (the exact pipeline
        reports its fast-path counters through it)."""
        return self._cache

    def _to_canonical(self) -> dict[Hashable, int]:
        return {label: index for index, label in enumerate(self.labels)}

    def _to_actual(self) -> dict[int, Hashable]:
        return dict(enumerate(self.labels))

    def _canonical_cnf(self) -> tuple[Cnf, bool]:
        """The canonical CNF of this shape, plus whether it was a hit."""
        with self._cache._lock:
            canonical = self._entry.cnf
        if canonical is not None:
            return canonical, True
        store = self._cache.store
        if store is not None:
            canonical = store.load_cnf(self.signature)
            if canonical is not None:
                return self._publish_cnf(canonical), False
        # Tseytin numbers CNF variables by gate order, which is
        # label-independent, so transforming the actual-labelled circuit
        # and canonicalizing its label map is equivalent to (and cheaper
        # than) transforming a canonically renamed copy.
        real = tseytin_transform(self._flat)
        canonical = self._publish_cnf(
            _relabel_cnf(real, self._to_canonical())
        )
        if store is not None:
            store.store_cnf(self.signature, canonical)
        return canonical, False

    def _publish_cnf(self, canonical: Cnf) -> Cnf:
        """Install a freshly built/loaded CNF, losing races gracefully."""
        with self._cache._lock:
            if self._entry.cnf is None:
                self._entry.cnf = canonical
            return self._entry.cnf

    def cnf(self) -> Cnf:
        """The Tseytin CNF of the circuit, labelled with its facts."""
        canonical, hit = self._canonical_cnf()
        stats = self._cache.stats
        with self._cache._lock:
            if hit:
                stats.cnf_hits += 1
            else:
                stats.cnf_misses += 1
        return _relabel_cnf(canonical, self._to_actual())

    def ddnnf(
        self,
        budget: CompilationBudget | None = None,
        jobs: int | None = None,
    ) -> Circuit:
        """The auxiliary-eliminated d-DNNF, labelled with the circuit's
        facts.

        On a hit the (possibly expensive) compilation is skipped
        entirely and only an O(size) rename is paid, regardless of
        ``budget``.  On a miss, compilation runs under ``budget`` and
        :class:`~repro.compiler.knowledge.BudgetExceeded` propagates;
        failures are not cached, so a later call with a larger budget
        retries.  ``jobs`` > 1 compiles independent top-level components
        concurrently (byte-identical output).
        """
        return self._canonical_ddnnf(budget, jobs).rename(self._to_actual())

    def _canonical_ddnnf(
        self, budget: CompilationBudget | None, jobs: int | None = None
    ) -> Circuit:
        """The canonical (index-labelled) d-DNNF of this shape."""
        cache = self._cache
        with cache._lock:
            canonical = self._entry.ddnnf
        if canonical is None:
            return self._miss_ddnnf(budget, jobs)
        with cache._lock:
            cache.stats.ddnnf_hits += 1
        return canonical

    def tape(
        self,
        budget: CompilationBudget | None = None,
        jobs: int | None = None,
    ) -> GateTape:
        """The compiled gate tape of the d-DNNF, re-targeted at the
        circuit's facts.

        On a hit (memory or store) no circuit is traversed at all: the
        canonical tape's instruction arrays are shared and only its
        O(#vars) label table is rebuilt — this is what lets warm shapes
        skip straight to kernel arithmetic, across processes and socket
        workers.  On a miss the canonical d-DNNF is obtained first
        (compiling under ``budget`` if needed, with
        :class:`~repro.compiler.knowledge.BudgetExceeded` propagating)
        and lowered once; the result is published to both tiers.
        """
        cache = self._cache
        with cache._lock:
            canonical = self._entry.tape
        if canonical is None:
            canonical = self._miss_tape(budget, jobs)
        else:
            with cache._lock:
                cache.stats.tape_hits += 1
        return canonical.with_labels(self._to_actual())

    def _miss_tape(
        self, budget: CompilationBudget | None, jobs: int | None = None
    ) -> GateTape:
        """Memory-tier miss: consult the persistent store, then lower
        the (cached or freshly compiled) canonical d-DNNF."""
        cache = self._cache
        store = cache.store
        if store is not None:
            loaded = store.load_tape(self.signature)
            if loaded is not None and cache.verify_loaded("tape", loaded):
                with cache._lock:
                    if self._entry.tape is None:
                        self._entry.tape = loaded
                    cache.stats.tape_misses += 1
                    return self._entry.tape
        ddnnf = self._canonical_ddnnf(budget, jobs)
        with cache._lock:
            cache.stats.tape_compilations += 1
        lower_started = time.perf_counter()
        tape = compile_tape(ddnnf)
        self.tape_lower_seconds += time.perf_counter() - lower_started
        with cache._lock:
            if self._entry.tape is None:
                self._entry.tape = tape
            else:
                tape = self._entry.tape
            cache.stats.tape_misses += 1
        if store is not None:
            store.store_tape(self.signature, tape)
        return tape

    def _miss_ddnnf(
        self, budget: CompilationBudget | None, jobs: int | None = None
    ) -> Circuit:
        """Memory-tier miss: consult the persistent store, then compile
        — stitching memoized sub-circuits through the cache's component
        memo wherever the shape contains a known component."""
        cache = self._cache
        store = cache.store
        if store is not None:
            loaded = store.load_ddnnf(self.signature)
            if loaded is not None and cache.verify_loaded("dnnf", loaded):
                with cache._lock:
                    if self._entry.ddnnf is None:
                        self._entry.ddnnf = loaded
                    cache.stats.ddnnf_misses += 1
                    return self._entry.ddnnf
        cnf, _ = self._canonical_cnf()
        with cache._lock:
            cache.stats.compile_calls += 1
        try:
            compiled = compile_cnf(
                cnf, budget=budget, memo=cache.component_memo(), jobs=jobs
            )
        except BudgetExceeded:
            with cache._lock:
                cache.stats.compile_failures += 1
                cache.stats.ddnnf_misses += 1
            raise
        self.compile_stats = compiled.stats
        canonical = eliminate_auxiliary(
            compiled.circuit, set(cnf.labels.values())
        )
        with cache._lock:
            if self._entry.ddnnf is None:
                self._entry.ddnnf = canonical
            else:
                canonical = self._entry.ddnnf
            cache.stats.ddnnf_misses += 1
        if store is not None:
            store.store_ddnnf(self.signature, canonical)
        return canonical

    def is_warm(self, kind: str = "tape") -> bool:
        """Whether serving ``kind`` for this shape needs no compile.

        A shape is warm when its d-DNNF is already in memory or on disk
        (any request then pays at most a tape lowering), or — for
        ``kind="tape"`` — when the tape itself is stored.  The pipeline
        planner uses this as its cold/warm cut: warm shapes contribute
        no component-compile jobs, which is what keeps the warm-store
        zero-compiles invariant intact under pipelining.  A probe only:
        no artifact is loaded and no stats are touched.
        """
        with self._cache._lock:
            if self._entry.ddnnf is not None or self._entry.tape is not None:
                return True
        store = self._cache.store
        if store is None:
            return False
        if store.path_for(self.signature, "dnnf").exists():
            return True
        return kind == "tape" and store.path_for(
            self.signature, "tape"
        ).exists()

    def component_plan(self) -> list:
        """The distinct canonical components a cold compile of this
        shape would request — the shape's contribution to the pipelined
        batch's fleet-wide component-compile pass (see
        :func:`~repro.compiler.knowledge.plan_components`).  Computes
        (and caches/stores) the canonical CNF as a side effect, which a
        cold shape pays anyway.
        """
        canonical, _ = self._canonical_cnf()
        return plan_components(canonical)


class ArtifactCache:
    """Memoizes Tseytin CNFs and compiled d-DNNFs across lineages.

    Keys are canonical structural signatures, so any two isomorphic
    circuits (same shape, different fact labels) share one slot.  The
    cache is safe to share across threads — a
    :class:`~repro.engine.session.ExplainSession` hands one instance to
    every worker — and across engines: the exact, hybrid, and CNF-proxy
    paths all reuse the same CNF artifact.

    ``max_entries`` bounds the number of cached shapes with LRU
    eviction; ``None`` means unbounded, ``0`` disables storage while
    keeping the accounting (useful to measure the uncached baseline).

    ``store`` optionally attaches a
    :class:`~repro.engine.store.PersistentArtifactStore` as a second,
    disk-backed tier: in-memory misses consult the store before
    compiling, and freshly compiled artifacts are written back, so the
    compile-once property extends across processes and across runs.
    The store keeps its own hit/miss/corruption stats, merged into
    :meth:`stats_dict`.
    """

    def __init__(
        self,
        max_entries: int | None = None,
        store: PersistentArtifactStore | None = None,
        component_cache_size: int | None = 256,
        verify_on_load: bool = False,
    ) -> None:
        if component_cache_size is not None and component_cache_size < 0:
            raise ValueError(
                "component_cache_size must be non-negative, "
                f"got {component_cache_size}"
            )
        self.max_entries = max_entries
        self.store = store
        #: When set, every artifact loaded from the persistent store is
        #: spot-checked against the static d-DNNF/tape invariants (see
        #: :mod:`repro.analysis.verify`) before being trusted; a failed
        #: check counts in ``stats.verifier_violations`` and the
        #: artifact is recompiled instead.  Checksums already catch
        #: bit-rot — this catches *semantically* invalid artifacts
        #: (e.g. written by a buggy or adversarial producer).
        self.verify_on_load = verify_on_load
        #: Slots of the in-memory component-circuit LRU (``None`` =
        #: unbounded, ``0`` = store tier only).  Unlike ``max_entries``,
        #: ``0`` does not disable the memo — disk-backed component hits
        #: still flow.
        self.component_cache_size = component_cache_size
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._memo = _CacheComponentMemo(self)
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def open(self, circuit: Circuit) -> CircuitArtifacts:
        """Bind ``circuit`` to its cache slot and return the handle."""
        conditioned = circuit.condition({})
        flat = conditioned.flatten()
        signature, labels = flat.structural_signature()
        source_size = len(conditioned)
        if self.max_entries == 0:
            # Storage disabled: hand out an unstored slot instead of
            # inserting and immediately evicting it, so ``evictions``
            # only counts real capacity evictions.  A persistent store,
            # if attached, still serves the handle's misses.
            return CircuitArtifacts(
                self, _Entry(), signature, labels, flat, source_size
            )
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                entry = _Entry()
                self._entries[signature] = entry
                if self.max_entries is not None:
                    while len(self._entries) > self.max_entries:
                        self._entries.popitem(last=False)
                        self.stats.evictions += 1
            else:
                self._entries.move_to_end(signature)
        return CircuitArtifacts(self, entry, signature, labels, flat, source_size)

    def cnf_for(self, circuit: Circuit) -> Cnf:
        """Tseytin CNF of ``circuit``, served from the cache."""
        return self.open(circuit).cnf()

    def ddnnf_for(
        self, circuit: Circuit, budget: CompilationBudget | None = None
    ) -> Circuit:
        """Auxiliary-eliminated d-DNNF of ``circuit``, served from the
        cache (compiling under ``budget`` on a miss)."""
        return self.open(circuit).ddnnf(budget=budget)

    def verify_loaded(self, kind: str, artifact: object) -> bool:
        """Spot-check a store-loaded artifact when ``verify_on_load``
        is set; returns False (and counts a violation) when the caller
        must discard it and recompile."""
        if not self.verify_on_load:
            return True
        from ..analysis.verify import (
            LOAD_DETERMINISM_LIMIT,
            check_circuit,
            check_loaded_tape,
        )

        if kind == "tape":
            problems = check_loaded_tape(artifact)
        else:
            problems, _ = check_circuit(artifact, LOAD_DETERMINISM_LIMIT)
        if not problems:
            return True
        with self._lock:
            self.stats.verifier_violations += 1
        return False

    def component_memo(self) -> ComponentMemo:
        """The cache-backed cross-shape component memo.

        Hand it to :func:`~repro.compiler.knowledge.compile_cnf` (the
        handle's ``ddnnf``/``tape`` paths do so automatically) to stitch
        previously compiled sub-circuits into cold compiles.
        """
        return self._memo

    def record_fastpath(self, fastpath) -> None:
        """Merge one computation's machine-width counters — a
        :class:`~repro.core.numerics.fixed.FastpathStats` — including
        the per-reason fallback split (thread-safe; called by the exact
        pipeline after each derivative pass)."""
        if fastpath.hits or fastpath.fallbacks:
            with self._lock:
                self.stats.fastpath_hits += fastpath.hits
                self.stats.fastpath_fallbacks += fastpath.fallbacks
                self.stats.fastpath_overflow_fallbacks += fastpath.overflow
                self.stats.fastpath_ineligible_fallbacks += (
                    fastpath.ineligible)
                self.stats.fastpath_budget_fallbacks += fastpath.budget

    def record_batch(self, groups: int, answers: int) -> None:
        """Count one batched same-shape group execution covering
        ``answers`` answers (thread-safe)."""
        with self._lock:
            self.stats.batched_groups += groups
            self.stats.batched_answers += answers

    def record_pipeline(
        self,
        overlap_seconds: float = 0.0,
        compiles: int = 0,
        stitches: int = 0,
    ) -> None:
        """Account one pipelined cold batch (thread-safe): seconds of
        genuine compile/execute overlap, standalone compiles performed
        by the component pass, and stitch jobs dispatched."""
        with self._lock:
            self.stats.pipeline_overlap_seconds += float(overlap_seconds)
            self.stats.component_pass_compiles += int(compiles)
            self.stats.stitch_jobs += int(stitches)

    def stats_dict(self) -> dict[str, int]:
        """Hit/miss stats of both tiers as one flat dict.

        The in-memory tier's counters come first; when a persistent
        store is attached its ``store_*`` counters are appended.
        """
        merged = self.stats.as_dict()
        if self.store is not None:
            merged.update(self.store.stats.as_dict())
        return merged

    def clear(self) -> None:
        """Drop every cached in-memory artifact, including memoized
        component circuits (statistics and the persistent store, if
        any, are kept)."""
        with self._lock:
            self._entries.clear()
            self._memo.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"ArtifactCache(entries={len(self)}, "
            f"hits={s.hits}, misses={s.misses}, "
            f"compiles={s.compile_calls})"
        )
