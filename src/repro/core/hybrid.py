"""The hybrid strategy of Section 6.3.

Run the exact pipeline under a timeout ``t`` (the paper recommends
2.5 s); if it finishes, return exact Shapley values, otherwise fall back
to CNF Proxy and return a *ranking* of the facts (with proxy scores,
clearly flagged as inexact).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Hashable

from ..circuits.circuit import Circuit
from ..compiler.knowledge import CompilationBudget
from .cnf_proxy import cnf_proxy_from_circuit, cnf_proxy_values
from .metrics import ranking
from .pipeline import ExactOutcome, run_exact

if TYPE_CHECKING:  # pragma: no cover - engine imports this module
    from ..engine.cache import ArtifactCache, CircuitArtifacts


@dataclass
class HybridResult:
    """Outcome of the hybrid computation for one output tuple.

    ``kind`` is ``"exact"`` when Algorithm 1 finished within the
    timeout (``values`` are exact Shapley values) or ``"proxy"`` when it
    fell back to CNF Proxy (``values`` are proxy scores: trust the
    *order*, not the magnitudes).
    """

    kind: str
    values: dict[Hashable, Fraction]
    exact_outcome: ExactOutcome | None
    seconds: float

    def ranking(self) -> list[Hashable]:
        """Facts ordered by decreasing (exact or proxy) contribution."""
        return ranking(self.values)

    @property
    def is_exact(self) -> bool:
        return self.kind == "exact"


def hybrid_shapley(
    circuit: Circuit,
    endogenous_facts,
    timeout: float = 2.5,
    max_nodes: int | None = None,
    method: str = "derivative",
    cache: "ArtifactCache | None" = None,
    artifacts: "CircuitArtifacts | None" = None,
    numeric_backend: str | None = None,
) -> HybridResult:
    """Exact-within-timeout, else CNF Proxy (Section 6.3).

    ``timeout`` plays the role of the paper's configurable ``t``
    (default: the 2.5 s the paper justifies with Figure 8);
    ``max_nodes`` optionally caps compilation memory as well.  A shared
    ``cache`` serves both branches: a lineage shape compiled once makes
    later isomorphic answers exact even under a timeout they would
    otherwise blow, and the proxy fallback reuses the cached CNF.  A
    prebuilt ``artifacts`` handle (see :func:`~repro.core.pipeline.run_exact`)
    short-circuits re-canonicalization in both branches.
    """
    endo = list(endogenous_facts)
    start = time.perf_counter()
    budget = CompilationBudget(max_nodes=max_nodes, max_seconds=timeout)
    outcome = run_exact(
        circuit, endo, budget=budget, method=method,
        cache=cache, artifacts=artifacts, numeric_backend=numeric_backend,
    )
    elapsed = time.perf_counter() - start
    if outcome.ok and outcome.values is not None:
        return HybridResult("exact", outcome.values, outcome, elapsed)
    if artifacts is not None:
        proxy = cnf_proxy_values(artifacts.cnf(), endo)
    elif cache is not None:
        proxy = cnf_proxy_values(cache.cnf_for(circuit), endo)
    else:
        proxy = cnf_proxy_from_circuit(circuit, endo)
    elapsed = time.perf_counter() - start
    return HybridResult("proxy", proxy, outcome, elapsed)
