"""CNF Proxy (Algorithm 2): fast, inexact contribution scores.

Instead of the Shapley values of the CNF ``phi = AND_i psi_i`` (hard),
CNF Proxy computes the Shapley values of the *proxy function*
``phi~ = sum_i psi_i / n`` — a linear combination of clauses.  By
linearity of the Shapley value and the closed form for a single clause
(Lemma 5.2), each variable's score is a simple sum over the clauses
containing it:

    +1 / (n * m * C(m-1, #neg))   per positive occurrence,
    -1 / (n * m * C(m-1, #pos))   per negative occurrence,

where ``m`` is the clause width.  The scores can be far from the true
Shapley values, but (as the paper's experiments show and ours
replicate) the *ranking* they induce usually matches the true ranking.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb
from typing import Hashable, Iterable, Mapping

from ..circuits.circuit import Circuit
from ..circuits.cnf import Cnf
from ..circuits.tseytin import tseytin_transform


def clause_weight(width: int, opposite_polarity_count: int) -> Fraction:
    """Lemma 5.2's per-clause magnitude ``1 / (m * C(m-1, b))``.

    For a positive literal, ``b`` is the number of negative literals in
    the clause; for a negative literal, the number of positive ones.
    """
    return Fraction(1, width * comb(width - 1, opposite_polarity_count))


def cnf_proxy_values(
    cnf: Cnf,
    endogenous_facts: Iterable[Hashable],
    normalize: bool = True,
) -> dict[Hashable, Fraction]:
    """Algorithm 2: proxy contribution of each endogenous fact.

    Only variables whose CNF label is in ``endogenous_facts`` receive a
    score (Tseytin auxiliaries and exogenous facts still count toward
    clause widths, exactly as in the paper's Example 5.3).

    ``normalize=True`` divides by the number of clauses ``n`` as in
    Algorithm 2; ``normalize=False`` reproduces the un-normalized
    variant of Example 5.1.  Rankings are identical either way.
    """
    endo = list(endogenous_facts)
    endo_set = set(endo)
    values: dict[Hashable, Fraction] = {fact: Fraction(0) for fact in endo}
    n = len(cnf.clauses)
    if n == 0:
        return values
    scale = Fraction(1, n) if normalize else Fraction(1)

    for clause in cnf.clauses:
        width = len(clause)
        if width == 0:
            continue
        positive = [lit for lit in clause if lit > 0]
        negative = [lit for lit in clause if lit < 0]
        if positive:
            pos_weight = scale * clause_weight(width, len(negative))
            for lit in positive:
                label = cnf.labels.get(lit)
                if label in endo_set:
                    values[label] += pos_weight
        if negative:
            neg_weight = scale * clause_weight(width, len(positive))
            for lit in negative:
                label = cnf.labels.get(-lit)
                if label in endo_set:
                    values[label] -= neg_weight
    return values


def cnf_proxy_from_circuit(
    circuit: Circuit,
    endogenous_facts: Iterable[Hashable],
    normalize: bool = True,
) -> dict[Hashable, Fraction]:
    """Run CNF Proxy on the Tseytin CNF of an endogenous-lineage
    circuit — the right-hand path of the paper's Figure 3."""
    cnf = tseytin_transform(circuit)
    return cnf_proxy_values(cnf, endogenous_facts, normalize=normalize)


def proxy_game(cnf: Cnf) -> "callable":
    """The proxy function ``phi~`` itself, as a real-valued game over the
    *labelled* variables (unlabelled variables are fixed to false, so
    pass a fully-labelled CNF when exactness matters).

    Provided so tests can verify Lemma 5.2 against the naive Shapley
    computation of :mod:`repro.core.naive`.
    """
    n = len(cnf.clauses)

    def game(coalition: frozenset) -> Fraction:
        true_vars = {
            var for var, label in cnf.labels.items() if label in coalition
        }
        satisfied = 0
        for clause in cnf.clauses:
            for lit in clause:
                value = abs(lit) in true_vars
                if (lit > 0) == value:
                    satisfied += 1
                    break
        return Fraction(satisfied, n)

    return game
