"""Brute-force Shapley values, straight from Equation (1).

Exponential in the number of players — these functions exist to provide
ground truth for the test suite (e.g. the paper's Example 2.1) and for
tiny interactive explorations, never for benchmarks.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import permutations
from math import factorial
from typing import Callable, Hashable, Iterable, Sequence

from ..circuits.circuit import Circuit
from ..db.algebra import Operator
from ..db.database import Database
from ..db.evaluate import boolean_answer

# A cooperative game: a value function over coalitions (sets of players).
Game = Callable[[frozenset], object]

MAX_NAIVE_PLAYERS = 22


def shapley_naive(
    game: Game, players: Sequence[Hashable]
) -> dict[Hashable, Fraction]:
    """Shapley values of all players by subset enumeration.

    Evaluates the game once per coalition (``2^n`` evaluations), then
    assembles every player's value from Equation (1).  The game may be
    real-valued (used to test the CNF-proxy lemma) or Boolean.
    """
    players = list(players)
    n = len(players)
    if n > MAX_NAIVE_PLAYERS:
        raise ValueError(f"{n} players is too many for the naive algorithm")
    index = {p: i for i, p in enumerate(players)}

    values_cache: list[object] = [None] * (1 << n)
    for mask in range(1 << n):
        coalition = frozenset(players[i] for i in range(n) if mask >> i & 1)
        values_cache[mask] = game(coalition)

    n_fact = factorial(n)
    weights = [
        Fraction(factorial(size) * factorial(n - size - 1), n_fact)
        for size in range(n)
    ]
    result: dict[Hashable, Fraction] = {}
    for player in players:
        bit = 1 << index[player]
        total = Fraction(0)
        for mask in range(1 << n):
            if mask & bit:
                continue
            size = mask.bit_count()
            diff = values_cache[mask | bit] - values_cache[mask]
            if diff:
                total += weights[size] * Fraction(diff)
        result[player] = total
    return result


def shapley_naive_permutations(
    game: Game, players: Sequence[Hashable]
) -> dict[Hashable, Fraction]:
    """Shapley values by full permutation enumeration (n! evaluations).

    An independent second oracle for cross-checking the subset form on
    very small instances.
    """
    players = list(players)
    n = len(players)
    if n > 8:
        raise ValueError(f"{n}! permutations is too many")
    totals = {p: Fraction(0) for p in players}
    count = 0
    for order in permutations(players):
        count += 1
        coalition: frozenset = frozenset()
        previous = game(coalition)
        for player in order:
            coalition = coalition | {player}
            current = game(coalition)
            totals[player] += Fraction(current - previous)
            previous = current
    return {p: totals[p] / count for p in players}


def game_from_circuit(circuit: Circuit) -> Game:
    """The game ``E -> ELin(E)`` induced by an endogenous-lineage
    circuit: 1 if the coalition satisfies the circuit else 0."""

    def game(coalition: frozenset) -> int:
        return 1 if circuit.evaluate(coalition) else 0

    return game


def game_from_query(plan: Operator, db: Database) -> Game:
    """The game ``E -> q(Dx u E)`` of Equation (1), evaluated by running
    the actual query on the restricted database each time."""

    def game(coalition: frozenset) -> int:
        world = db.restrict_endogenous(coalition)
        return 1 if boolean_answer(plan, world) else 0

    return game


def shapley_naive_query(
    plan: Operator, db: Database, players: Iterable[Hashable] | None = None
) -> dict[Hashable, Fraction]:
    """Ground-truth Shapley values of a Boolean query by evaluating the
    query over every endogenous sub-database."""
    facts = list(players) if players is not None else db.endogenous_facts()
    return shapley_naive(game_from_query(plan, db), facts)
