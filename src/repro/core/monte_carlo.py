"""Monte Carlo permutation sampling for Shapley values.

The classic approximation of Mann & Shapley (1960), used by the paper
as a baseline (Section 6.2): sample ``r`` permutations of the
endogenous facts and average each fact's marginal contribution over the
permutation prefixes.  The paper's budget convention is ``m = r * n``
total coalition evaluations for a provenance with ``n`` distinct facts.

The implementation evaluates all ``n + 1`` prefixes of one permutation
in a single bit-parallel sweep of the circuit
(:meth:`~repro.circuits.circuit.Circuit.evaluate_batch`), which makes
the baseline competitive enough to be a fair comparison.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Sequence

from ..circuits.circuit import Circuit


def monte_carlo_shapley(
    circuit: Circuit,
    endogenous_facts: Iterable[Hashable],
    permutations: int | None = None,
    samples_per_fact: int | None = None,
    rng: random.Random | None = None,
) -> dict[Hashable, float]:
    """Approximate Shapley values of an endogenous-lineage circuit.

    Exactly one of ``permutations`` (the number ``r`` of sampled
    permutations) or ``samples_per_fact`` (the paper's per-fact budget
    ``m / n``, so ``r = samples_per_fact``) must be given.
    """
    facts = list(endogenous_facts)
    n = len(facts)
    if (permutations is None) == (samples_per_fact is None):
        raise ValueError("specify exactly one of permutations / samples_per_fact")
    rounds = permutations if permutations is not None else samples_per_fact
    if rounds is None or rounds <= 0:
        raise ValueError("the sampling budget must be positive")
    if rng is None:
        # REP001: a deterministic default keeps repeated runs
        # comparable; callers wanting fresh draws pass their own rng.
        rng = random.Random(0)

    totals = {fact: 0 for fact in facts}
    if n == 0:
        return {}

    order = list(facts)
    width = n + 1
    for _ in range(rounds):
        rng.shuffle(order)
        gains = _prefix_gains(circuit, order, width)
        for position, fact in enumerate(order):
            totals[fact] += gains[position]
    return {fact: totals[fact] / rounds for fact in facts}


def _prefix_gains(
    circuit: Circuit, order: Sequence[Hashable], width: int
) -> list[int]:
    """Marginal gain of each position of a permutation, computed on all
    prefixes at once with bit-parallel evaluation.

    Prefix ``i`` contains the first ``i`` facts; bit ``i`` of a fact's
    mask is set iff the fact belongs to prefix ``i``.
    """
    full = (1 << width) - 1
    assignments = {}
    for position, fact in enumerate(order):
        # Member of prefixes position+1 .. width-1.
        assignments[fact] = full & ~((1 << (position + 1)) - 1)
    outputs = circuit.evaluate_batch(assignments, width)
    gains = []
    for position in range(len(order)):
        before = outputs >> position & 1
        after = outputs >> (position + 1) & 1
        gains.append(after - before)
    return gains
