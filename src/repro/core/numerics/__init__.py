"""Pluggable numeric kernels for the circuit-Shapley hot path.

* :mod:`~repro.core.numerics.base` — the :class:`Kernel` primitives
  (poly mul/add, binomial completion, the Equation-3 combination), the
  registry (``get_kernel`` / ``register_kernel`` /
  ``available_kernels``), and the cached ``shapley_coefficients``;
* :mod:`~repro.core.numerics.exact` — the big-int reference backend
  (``"python"``);
* :mod:`~repro.core.numerics.vector` — the vectorized NumPy backend
  over object-dtype arrays (``"numpy"``, optional dependency with
  graceful fallback);
* :mod:`~repro.core.numerics.fixed` — the machine-width tier: the
  overflow-guarded native ``"int64"`` kernel and the level-scheduled
  tape fast path (float64 / int64 / CRT residue planes, per-shape
  fallback to the exact object kernels);
* :mod:`~repro.core.numerics.batched` — the cross-answer batch axis
  over the machine-width tier: one ``(batch, planes, slots, width)``
  sweep per same-shape answer group, per-lane overflow fallback;
* :mod:`~repro.core.numerics.torch_backend` — the optional ``"torch"``
  backend (CUDA when available) for the batched sweeps, with the same
  graceful fallback contract as NumPy;
* :mod:`~repro.core.numerics.tape` — :class:`GateTape`, the compiled
  flat instruction form of a d-DNNF executing the smoothing-free
  forward/backward sweeps, now carrying its level schedule and
  a-priori magnitude bounds; persisted by the engine layer as a third
  artifact kind (payload format v2, v1 re-lowered on load).

``get_kernel("auto")`` walks the ladder int64 → numpy → python.  See
README.md ("Choosing a numeric backend") for selection guidance and
overflow semantics.
"""

from .base import (
    Kernel,
    available_kernels,
    binomial_row,
    coefficients_cache_info,
    get_kernel,
    register_kernel,
    shapley_coefficients,
)
from .exact import PythonKernel
from .vector import HAS_NUMPY, NumpyKernel
from .fixed import (
    FastpathStats,
    Int64Kernel,
    LevelPlan,
    fastpath_diffs,
    plan_for,
    plan_with_reason,
)
from .batched import BatchLevelPlan, batched_fastpath_diffs
from .torch_backend import HAS_TORCH, TorchKernel
from .tape import (
    GateTape,
    NonDecomposableTape,
    TapeError,
    compile_tape,
)

__all__ = [
    "Kernel", "PythonKernel", "NumpyKernel", "Int64Kernel", "HAS_NUMPY",
    "TorchKernel", "HAS_TORCH",
    "available_kernels", "get_kernel", "register_kernel",
    "binomial_row", "shapley_coefficients", "coefficients_cache_info",
    "FastpathStats", "LevelPlan", "fastpath_diffs", "plan_for",
    "plan_with_reason", "BatchLevelPlan", "batched_fastpath_diffs",
    "GateTape", "TapeError", "NonDecomposableTape", "compile_tape",
]
