"""Pluggable numeric kernels for the circuit-Shapley hot path.

* :mod:`~repro.core.numerics.base` — the :class:`Kernel` primitives
  (poly mul/add, binomial completion, the Equation-3 combination), the
  registry (``get_kernel`` / ``register_kernel`` /
  ``available_kernels``), and the cached ``shapley_coefficients``;
* :mod:`~repro.core.numerics.exact` — the big-int reference backend
  (``"python"``);
* :mod:`~repro.core.numerics.vector` — the vectorized NumPy backend
  (``"numpy"``, optional dependency with graceful fallback);
* :mod:`~repro.core.numerics.tape` — :class:`GateTape`, the compiled
  flat instruction form of a d-DNNF executing the smoothing-free
  forward/backward sweeps; persisted by the engine layer as a third
  artifact kind.

See README.md ("Numeric kernels") for backend selection and the tape
artifact life cycle.
"""

from .base import (
    Kernel,
    available_kernels,
    binomial_row,
    get_kernel,
    register_kernel,
    shapley_coefficients,
)
from .exact import PythonKernel
from .vector import HAS_NUMPY, NumpyKernel
from .tape import (
    GateTape,
    NonDecomposableTape,
    TapeError,
    compile_tape,
)

__all__ = [
    "Kernel", "PythonKernel", "NumpyKernel", "HAS_NUMPY",
    "available_kernels", "get_kernel", "register_kernel",
    "binomial_row", "shapley_coefficients",
    "GateTape", "TapeError", "NonDecomposableTape", "compile_tape",
]
