"""The machine-width execution tier: overflow-guarded int64/float64
kernels and level-scheduled tape execution.

The object-dtype NumPy backend (:mod:`~repro.core.numerics.vector`)
keeps Algorithm 1 exact by keeping Python big ints as array elements —
which means every multiply is still a Python-level operation and every
gate still a Python-level dispatch.  This module makes the warm,
post-compilation hot path *machine-cheap* instead, without ever giving
up exactness:

Per-call guarded kernel (``"int64"``)
    :class:`Int64Kernel` implements the generic :class:`~.base.Kernel`
    protocol over native ``int64`` arrays.  Every call first derives an
    a-priori product bound from its operands; if the result provably
    fits, the convolution/accumulation runs in native dtype, otherwise
    the call transparently delegates to the exact object/python kernels.
    Selection is per call, so mixed workloads (tiny lineages next to
    2^100-model monsters, ``Fraction`` expectation sums from the
    SHAP-score path) always get exact answers.

Level-scheduled tape execution
    :func:`fastpath_diffs` runs the smoothing-free forward/backward
    sweeps of a :class:`~.tape.GateTape` as a handful of whole-level
    array operations: the tape's instructions are grouped into
    topological levels (:meth:`~.tape.GateTape.level_schedule`), wide
    ANDs are decomposed into balanced binary trees, and each level's
    convolutions become one batched ``matmul`` over sliding-window
    views of a contiguous ``(planes, slots, width)`` SoA value buffer
    (OR gap completions are banded-matrix products).  Arithmetic is
    selected per *shape* from the tape's exact magnitude bounds
    (:meth:`~.tape.GateTape.bound_bits`):

    * ``float64`` when every bound fits 52 bits (integers below 2^53
      are exact in IEEE-754 doubles, and the matmuls hit BLAS);
    * ``int64`` when every bound fits 62 bits;
    * CRT residue planes otherwise — the same schedule evaluated
      modulo 2-5 machine-word primes with the exact integers recovered
      by the Chinese Remainder Theorem (sound because the a-priori
      bounds certify the values fit the prime product);
    * beyond CRT capacity the shape *falls back* to the interpreted
      per-gate pass over the exact object/python kernels.

    Either way the returned difference vectors — and therefore the
    final :class:`~fractions.Fraction` Shapley values — are
    byte-identical to the reference kernel's (asserted by the parity
    suite).  Runtime sentinels re-check the native tiers' magnitudes
    after each sweep as defense in depth; a tripped sentinel discards
    the run and falls back rather than trusting it.

NumPy is optional: without it the ``"int64"`` kernel registers but
resolves to the reference backend (same graceful-degradation contract
as ``"numpy"``), and the fast path reports itself unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .base import Kernel, binomial_row, register_kernel
from .exact import PythonKernel
from .tape import (
    OP_AND, OP_FALSE, OP_NOT, OP_NVAR, OP_OR, OP_TRUE, OP_VAR,
    GateTape,
)
from .vector import HAS_NUMPY, NumpyKernel

if HAS_NUMPY:  # pragma: no branch - module-level optional import
    import numpy as _np
    from numpy.lib.stride_tricks import sliding_window_view as _windows
else:  # pragma: no cover - exercised by the without-NumPy CI tier
    _np = None
    _windows = None

#: Magnitude budgets of the native tiers, in bits.  float64 keeps
#: integer arithmetic exact strictly below 2^53; int64 wraps at 2^63.
#: One bit of headroom each guards the sentinel comparisons themselves.
FLOAT64_BITS = 52
INT64_BITS = 62

#: CRT residue primes by bit width.  A plane's products must accumulate
#: without wrapping int64: with operands reduced below a ``b``-bit
#: prime, a length-``W`` convolution/matmul row sums ``W`` products of
#: at most ``2^(2b)``, so ``b``-bit primes are safe while
#: ``W * 2^(2b) < 2^63``.  Wider vectors step down to smaller primes.
#: (All values verified prime; largest primes below each power of two.)
_PRIME_TABLE = {
    28: (268435399, 268435367, 268435361, 268435337, 268435331),
    27: (134217689, 134217649, 134217617, 134217613, 134217593),
    26: (67108859, 67108837, 67108819, 67108777, 67108763),
    25: (33554393, 33554383, 33554371, 33554347, 33554341),
}

#: The maximum number of residue planes a shape may request; beyond
#: this the fast path declines and the interpreted exact pass runs.
MAX_PLANES = 5

#: Ceiling on ``planes * slots * width`` of one value buffer (8M int64
#: elements = 64 MiB).  Giant compiled shapes decline the fast path
#: rather than risk swapping a serving process — the interpreted pass
#: streams per gate and has no such footprint.
MAX_BUFFER_ELEMENTS = 1 << 23


@dataclass
class FastpathStats:
    """Counts of machine-width hits and per-shape fallbacks.

    One instance travels through a single exact computation; the engine
    layer merges the counts into its cache stats so sessions and remote
    workers report ``fastpath_hits`` / ``fastpath_fallbacks``.

    ``fallbacks`` is the total; the per-reason counters split it:
    ``overflow`` (a runtime sentinel tripped mid-execution),
    ``ineligible`` (the shape's magnitude bounds or structure rule the
    fast path out a priori), and ``budget`` (the SoA value buffers
    would exceed the configured memory budget).
    """

    hits: int = 0
    fallbacks: int = 0
    overflow: int = 0
    ineligible: int = 0
    budget: int = 0

    def count_fallback(self, reason: str, n: int = 1) -> None:
        """Record ``n`` fallbacks attributed to ``reason`` (one of
        ``"overflow"`` / ``"ineligible"`` / ``"budget"``)."""
        self.fallbacks += n
        if reason == "overflow":
            self.overflow += n
        elif reason == "budget":
            self.budget += n
        else:
            self.ineligible += n


# ----------------------------------------------------------------------
# Per-call guarded kernel
# ----------------------------------------------------------------------

def _int_magnitude(values: Sequence) -> int | None:
    """Largest absolute value if every element is a plain ``int``,
    ``None`` otherwise (Fractions, bools, and anything else must take
    the exact delegate path)."""
    bound = 0
    for value in values:
        if type(value) is not int:
            return None
        if value < 0:
            value = -value
        if value > bound:
            bound = value
    return bound


class Int64Kernel(Kernel):
    """Overflow-guarded native-``int64`` backend (optional dependency).

    Exactness contract: identical to the reference kernel on every
    input.  Each primitive proves, from its operands alone, that the
    result and all intermediate accumulations fit ``int64``; calls that
    cannot be proven safe delegate to the object-dtype NumPy kernel
    (or the reference kernel without NumPy).
    """

    name = "int64"

    def __init__(self) -> None:
        self._delegate = NumpyKernel() if HAS_NUMPY else PythonKernel()

    def poly_mul(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        if not HAS_NUMPY or min(len(a), len(b)) < 2:
            return self._delegate.poly_mul(a, b)
        bound_a = _int_magnitude(a)
        bound_b = _int_magnitude(b)
        if (
            bound_a is None or bound_b is None
            or bound_a * bound_b * min(len(a), len(b)) >> INT64_BITS
        ):
            return self._delegate.poly_mul(a, b)
        product = _np.convolve(
            _np.array(a, dtype=_np.int64), _np.array(b, dtype=_np.int64)
        )
        return product.tolist()

    def poly_add(
        self, acc: list[int] | None, poly: Sequence[int]
    ) -> list[int]:
        if not HAS_NUMPY or acc is None or len(poly) < 16:
            return super().poly_add(acc, poly)
        bound_acc = _int_magnitude(acc)
        bound_poly = _int_magnitude(poly)
        if (
            bound_acc is None or bound_poly is None
            or (bound_acc + bound_poly) >> INT64_BITS
        ):
            return super().poly_add(acc, poly)
        if len(acc) < len(poly):
            acc.extend([0] * (len(poly) - len(acc)))
        head = _np.array(acc[: len(poly)], dtype=_np.int64)
        head += _np.array(poly, dtype=_np.int64)
        acc[: len(poly)] = head.tolist()
        return acc

    def or_accumulate(
        self,
        nvars: int,
        child_vals: Sequence[Sequence[int]],
        gaps: Sequence[int],
    ) -> list[int]:
        if not HAS_NUMPY or nvars < 2:
            return self._delegate.or_accumulate(nvars, child_vals, gaps)
        # Bound the accumulated result: each child contributes its own
        # magnitude times its largest completion binomial, summed.
        total = 0
        for vals, gap in zip(child_vals, gaps):
            bound = _int_magnitude(vals)
            if bound is None:
                total = None
                break
            width = min(len(vals), gap + 1)
            total += bound * binomial_row(gap)[gap // 2] * max(width, 1)
        if total is None or total >> INT64_BITS:
            return self._delegate.or_accumulate(nvars, child_vals, gaps)
        acc = _np.zeros(nvars + 1, dtype=_np.int64)
        for vals, gap in zip(child_vals, gaps):
            arr = _np.array(vals, dtype=_np.int64)
            if gap:
                arr = _np.convolve(
                    arr, _np.array(binomial_row(gap), dtype=_np.int64)
                )
            acc[: len(arr)] += arr
        return acc.tolist()


register_kernel(Int64Kernel, aliases=("fixed",))


# ----------------------------------------------------------------------
# Level-scheduled execution
# ----------------------------------------------------------------------

class _Ineligible(Exception):
    """Internal: this shape cannot take the machine-width fast path.

    ``reason`` attributes the refusal for the per-reason fallback
    counters: ``"ineligible"`` (magnitude bounds / structure) or
    ``"budget"`` (SoA buffers exceed the memory budget).
    """

    def __init__(self, message: str, reason: str = "ineligible") -> None:
        super().__init__(message)
        self.reason = reason


def budget_elements(budget_bytes: int | None) -> int:
    """The per-plan element ceiling implied by a byte budget (int64
    elements are 8 bytes); ``None`` keeps the built-in default."""
    if budget_bytes is None:
        return MAX_BUFFER_ELEMENTS
    return max(1, budget_bytes // 8)


def _select_arithmetic(bits: int, width: int) -> tuple[Any, tuple[int, ...] | None]:
    """Pick the cheapest sound arithmetic for a shape whose magnitudes
    fit ``bits`` bits and whose vectors are ``width`` long.

    Returns ``(dtype, moduli)`` — ``moduli`` is ``None`` for the native
    tiers and the CRT prime tuple otherwise.  Raises :class:`_Ineligible`
    when even the largest prime set cannot certify the bounds.
    """
    if bits <= FLOAT64_BITS:
        return _np.float64, None
    if bits <= INT64_BITS:
        return _np.int64, None
    for prime_bits in sorted(_PRIME_TABLE, reverse=True):
        primes = _PRIME_TABLE[prime_bits]
        if width * primes[0] * primes[0] < (1 << 63):
            capacity = 1
            chosen = []
            for prime in primes[:MAX_PLANES]:
                chosen.append(prime)
                capacity *= prime
                # Sign recovery needs 2 * bound < product of primes.
                if capacity >> (bits + 1):
                    return _np.int64, tuple(chosen)
            raise _Ineligible(f"bounds of {bits} bits exceed CRT capacity")
    raise _Ineligible(f"vectors of width {width} exceed CRT plane safety")


class LevelPlan:
    """One tape shape compiled to whole-level array operations.

    Construction groups the tape's instructions into topological levels,
    decomposes wide ANDs into balanced binary trees over auxiliary
    partial-product slots, drops OR edges from unsatisfiable children,
    and precomputes per-level gather/scatter index arrays plus the
    arithmetic tier.  Execution then touches only NumPy: a contiguous
    ``(planes, slots, width)`` value buffer, one batched sliding-window
    ``matmul`` per level of AND convolutions (both sweeps), and one
    banded-matrix product per distinct OR gap per level.

    Plans are label-agnostic and cached on the tape's shared analysis
    box, so isomorphic warm hits across a session build the plan once.
    """

    def __init__(
        self, tape: GateTape, budget_elements: int = MAX_BUFFER_ELEMENTS
    ) -> None:
        if not HAS_NUMPY:
            raise _Ineligible("NumPy is not available")
        ops = tape.ops
        if any(op == OP_NOT for op in ops):
            # The derivative pass requires NNF; the interpreted pass
            # owns the error message.
            raise _Ineligible("tape contains general negation")
        self.n_instructions = len(ops)
        self.width = tape.root_nvars + 1
        forward_bounds = tape.forward_bounds()
        slot_nvars = list(tape.nvars)

        # --- binarize wide ANDs over auxiliary slots -----------------
        # ``one_slot`` holds the constant polynomial 1: unary (and
        # empty) ANDs reduce to it, which keeps every AND strictly
        # binary.  Scheduling keys extend the tape's serialized level
        # schedule: original instructions keep ``(level, 0)`` and each
        # binarization round within a gate adds a sub-level, so a v2
        # payload's levels are consumed as-is.
        tape_levels = tape.level_schedule()
        and_nodes: list[tuple[int, int, int]] = []   # (out, left, right)
        or_edges: list[tuple[int, int, int]] = []    # (parent, child, gap)
        slot_keys: list[tuple[int, int]] = [
            (level, 0) for level in tape_levels]

        def new_aux(nv: int, key: tuple[int, int]) -> int:
            slot_nvars.append(nv)
            slot_keys.append(key)
            return len(slot_nvars) - 1

        self.one_slot = new_aux(0, (0, 0))
        constant_one_rows: list[int] = []
        for i, op in enumerate(ops):
            if op == OP_AND:
                expected = sum(slot_nvars[c] for c in tape.args[i])
                if expected != tape.nvars[i]:
                    raise _Ineligible("AND children variable sets overlap")
                work = sorted(tape.args[i], key=lambda c: slot_nvars[c])
                if not work:
                    constant_one_rows.append(i)  # empty product: [1]
                    continue
                if len(work) == 1:
                    and_nodes.append((i, work[0], self.one_slot))
                    continue
                gate_level = tape_levels[i]
                rounds = 0
                while len(work) > 2:
                    rounds += 1
                    paired = []
                    for j in range(0, len(work) - 1, 2):
                        a, b = work[j], work[j + 1]
                        aux = new_aux(
                            slot_nvars[a] + slot_nvars[b],
                            (gate_level, rounds),
                        )
                        and_nodes.append((aux, a, b))
                        paired.append(aux)
                    if len(work) % 2:
                        paired.append(work[-1])
                    work = paired
                if rounds:
                    slot_keys[i] = (gate_level, rounds + 1)
                left, right = work
                if slot_nvars[left] > slot_nvars[right]:
                    left, right = right, left
                and_nodes.append((i, left, right))
            elif op == OP_OR:
                for child, gap in zip(tape.args[i], tape.gaps[i]):
                    if forward_bounds[child] == 0:
                        continue  # unsatisfiable child: contributes zeros
                    or_edges.append((i, child, gap))
        self.n_slots = len(slot_nvars)

        # --- compact the schedule keys into execution levels ---------
        # The keys give a valid topological *order* (children sort
        # strictly before parents); one linear pass over it computes
        # minimal longest-path levels, so independent work from
        # different gates and tape levels shares an execution level
        # (fewer, fatter whole-level array ops).
        children: list[tuple[int, ...]] = [()] * self.n_slots
        for out, left, right in and_nodes:
            children[out] = (left, right)
        for parent, child, _ in or_edges:
            children[parent] += (child,)
        level = [0] * self.n_slots
        for slot in sorted(range(self.n_slots), key=slot_keys.__getitem__):
            deps = children[slot]
            if deps:
                level[slot] = 1 + max(level[dep] for dep in deps)
        self.n_levels = max(level) + 1

        # --- leaf initialisation indices -----------------------------
        intp = _np.intp
        self.var_rows = _np.array(
            [i for i, op in enumerate(ops) if op == OP_VAR], dtype=intp)
        self.nvar_rows = _np.array(
            [i for i, op in enumerate(ops) if op == OP_NVAR], dtype=intp)
        self.true_rows = _np.array(
            [i for i, op in enumerate(ops) if op == OP_TRUE]
            + constant_one_rows + [self.one_slot],
            dtype=intp)
        self.n_var_slots = len(tape.var_labels)

        # --- per-level operation groups ------------------------------
        width = self.width
        by_level_and: list[list[tuple[int, int, int]]] = [
            [] for _ in range(self.n_levels)]
        by_level_or: list[dict[int, list[tuple[int, int]]]] = [
            {} for _ in range(self.n_levels)]
        for out, left, right in and_nodes:
            by_level_and[level[out]].append((out, left, right))
        for parent, child, gap in or_edges:
            by_level_or[level[parent]].setdefault(gap, []).append(
                (parent, child))

        def index(rows: Sequence[int]) -> Any:
            return _np.array(rows, dtype=intp)

        def scatter(rows: Sequence[int]) -> tuple:
            """A precompiled scatter-add plan for target ``rows``:
            ``(targets, None)`` when they are distinct (fancy ``+=``
            suffices), else ``(unique_targets, order, starts)`` for a
            sort + ``add.reduceat`` + fancy ``+=`` (ufunc.at is an
            order of magnitude slower than either)."""
            arr = index(rows)
            if len(set(rows)) == len(rows):
                return (arr, None)
            order = _np.argsort(arr, kind="stable")
            sorted_targets = arr[order]
            firsts = _np.ones(len(rows), dtype=bool)
            firsts[1:] = sorted_targets[1:] != sorted_targets[:-1]
            starts = _np.flatnonzero(firsts)
            return (sorted_targets[starts], order, starts)

        self.and_groups: list[tuple | None] = []
        for lv in range(self.n_levels):
            group = by_level_and[lv]
            if not group:
                self.and_groups.append(None)
                continue
            out = [g[0] for g in group]
            left = [g[1] for g in group]
            right = [g[2] for g in group]
            max_left = min(max(slot_nvars[s] + 1 for s in left), width)
            max_right = min(max(slot_nvars[s] + 1 for s in right), width)
            max_der = min(max(width - slot_nvars[s] for s in out), width)
            self.and_groups.append((
                index(out), index(left), index(right),
                max_left, max_right, max_der,
                scatter(left), scatter(right),
            ))
        self.or_groups: list[list[tuple]] = []
        for lv in range(self.n_levels):
            groups = []
            for gap, edges in sorted(by_level_or[lv].items()):
                parents = [e[0] for e in edges]
                children = [e[1] for e in edges]
                groups.append((
                    gap, index(parents), index(children),
                    scatter(parents), scatter(children),
                ))
            self.or_groups.append(groups)
        self.scatter_levels = [
            _np.unique(_np.concatenate(
                [grp[1] for grp in self.or_groups[lv]]))
            if self.or_groups[lv] else None
            for lv in range(self.n_levels)
        ]
        self.var_scatter = scatter(
            [tape.args[i][0] for i in self.var_rows])
        self.nvar_scatter = scatter(
            [tape.args[i][0] for i in self.nvar_rows])

        # --- arithmetic tier -----------------------------------------
        forward_bits, backward_bits, diff_bits = tape.bound_bits()
        self.bound_bits = max(forward_bits, backward_bits, diff_bits)
        self.dtype, self.moduli = _select_arithmetic(self.bound_bits, width)
        self.lane_elements = self.n_planes * self.n_slots * width
        if self.lane_elements > budget_elements:
            raise _Ineligible(
                "value buffers exceed the memory budget", reason="budget")
        self._gap_matrices: dict[tuple, object] = {}

    # -- execution helpers ---------------------------------------------

    @property
    def n_planes(self) -> int:
        return len(self.moduli) if self.moduli else 1

    @property
    def tier_name(self) -> str:
        """The arithmetic tier this shape runs in: ``"float64"``,
        ``"int64"``, or ``"crt"``."""
        if self.moduli:
            return "crt"
        if self.dtype == _np.float64:
            return "float64"
        return "int64"

    def _moduli_column(self) -> Any:
        if self.moduli is None:
            return None
        return _np.array(self.moduli, dtype=_np.int64)[:, None, None]

    def _gap_matrix(self, gap: int, plane: int) -> Any:
        """The banded completion matrix ``M[i, i+j] = C(gap, j)`` (one
        per residue plane in CRT mode), cached on the plan."""
        modulus = self.moduli[plane] if self.moduli else None
        key = (gap, modulus)
        matrix = self._gap_matrices.get(key)
        if matrix is None:
            row = binomial_row(gap)
            width = self.width
            matrix = _np.zeros((width, width), dtype=self.dtype)
            for i in range(width):
                for j in range(min(len(row), width - i)):
                    entry = row[j] if modulus is None else row[j] % modulus
                    matrix[i, i + j] = entry
            self._gap_matrices[key] = matrix
        return matrix

    @staticmethod
    def _scatter_add(buffer: Any, plan: tuple, contribution: Any) -> None:
        """``buffer[:, targets] += contribution`` under a scatter plan
        from ``__init__``: plain fancy add for distinct targets, sort +
        ``add.reduceat`` for duplicated ones."""
        if plan[1] is None:
            buffer[:, plan[0]] += contribution
            return
        targets, order, starts = plan
        reduced = _np.add.reduceat(contribution[:, order], starts, axis=1)
        buffer[:, targets] += reduced

    @staticmethod
    def _conv(short: Any, long: Any, n_terms: int) -> Any:
        """Batched truncated convolution along the last axis, summing
        over ``short``'s first ``n_terms`` coefficients: one matmul
        over a sliding-window view of the zero-padded ``long``."""
        planes, rows, width = long.shape
        padded = _np.zeros(
            (planes, rows, width + n_terms - 1), dtype=long.dtype)
        padded[:, :, n_terms - 1:] = long
        wins = _windows(padded, width, axis=2)        # (P, E, n_terms, W)
        coeffs = short[:, :, n_terms - 1::-1]          # reversed prefix
        return _np.matmul(coeffs[:, :, None, :], wins)[:, :, 0, :]

    def _gap_coefficients(self, gap: int) -> Any:
        """Pascal row of ``gap`` as a ``(planes, 1, 1, n_terms)``-able
        array (reduced per residue plane in CRT mode), cached."""
        key = ("row", gap)
        coeffs = self._gap_matrices.get(key)
        if coeffs is None:
            row = binomial_row(gap)[: self.width]
            if self.moduli is None:
                coeffs = _np.array(row, dtype=self.dtype)
            else:
                coeffs = _np.array(
                    [[value % modulus for value in row]
                     for modulus in self.moduli],
                    dtype=_np.int64,
                )
            self._gap_matrices[key] = coeffs
        return coeffs

    def _completed(self, gathered: Any, gap: int) -> Any:
        """``gathered`` convolved with the Pascal row of ``gap``, per
        plane (identity when ``gap == 0``).

        Small gaps — the common case, since a gap counts variables an
        OR child misses — run as ``gap + 1`` whole-level shifted adds;
        wide gaps use the banded completion matrix (one matmul), whose
        dense product only pays off once the band covers a decent
        fraction of the width.
        """
        if gap == 0:
            return gathered
        width = self.width
        n_terms = min(gap + 1, width)
        if n_terms * 4 > width:
            if self.moduli is None:
                return gathered @ self._gap_matrix(gap, 0)
            out = _np.empty_like(gathered)
            for plane in range(self.n_planes):
                out[plane] = gathered[plane] @ self._gap_matrix(gap, plane)
            out %= self._moduli_column()
            return out
        coeffs = self._gap_coefficients(gap)
        out = _np.zeros_like(gathered)
        if self.moduli is None:
            for j in range(n_terms):
                out[:, :, j:] += coeffs[j] * gathered[:, :, :width - j]
            return out
        for j in range(n_terms):
            out[:, :, j:] += (
                coeffs[:, j, None, None] * gathered[:, :, :width - j])
        out %= self._moduli_column()
        return out

    def forward(self, check: Callable[[], None] | None = None) -> Any:
        """The level-scheduled ``ComputeAll#SATk`` sweep: one value
        buffer, a handful of array ops per level."""
        width = self.width
        vals = _np.zeros((self.n_planes, self.n_slots, width),
                         dtype=self.dtype)
        if len(self.var_rows):
            vals[:, self.var_rows, 1] = 1
        if len(self.nvar_rows):
            vals[:, self.nvar_rows, 0] = 1
        vals[:, self.true_rows, 0] = 1
        moduli = self._moduli_column()
        for lv in range(1, self.n_levels):
            if check is not None:
                check()
            group = self.and_groups[lv]
            if group is not None:
                out, left, right, max_left = group[:4]
                product = self._conv(vals[:, left], vals[:, right], max_left)
                if moduli is not None:
                    product %= moduli
                vals[:, out] = product
            for gap, parents, children, p_plan, _ in self.or_groups[lv]:
                completed = self._completed(vals[:, children], gap)
                self._scatter_add(vals, p_plan, completed)
            if moduli is not None and self.scatter_levels[lv] is not None:
                vals[:, self.scatter_levels[lv]] %= moduli
        return vals

    def backward(self, vals: Any, check: Callable[[], None] | None = None) -> Any:
        """The level-scheduled derivative sweep over ``vals``."""
        width = self.width
        ders = _np.zeros_like(vals)
        ders[:, self.n_instructions - 1, 0] = 1
        moduli = self._moduli_column()
        for lv in range(self.n_levels - 1, 0, -1):
            if check is not None:
                check()
            group = self.and_groups[lv]
            if group is not None:
                (out, left, right, max_left, max_right, max_der,
                 left_plan, right_plan) = group
                derivative = ders[:, out]
                if moduli is not None:
                    derivative %= moduli
                # The contribution to each child convolves the parent's
                # derivative with the *other* child's value polynomial;
                # each direction loops over its narrower operand.
                for sources, tgt_plan, max_sib in (
                    (right, left_plan, max_right),
                    (left, right_plan, max_left),
                ):
                    siblings = vals[:, sources]
                    if max_der < max_sib:
                        contribution = self._conv(
                            derivative, siblings, max_der)
                    else:
                        contribution = self._conv(
                            siblings, derivative, max_sib)
                    if moduli is not None:
                        contribution %= moduli
                    self._scatter_add(ders, tgt_plan, contribution)
            for gap, parents, children, _, c_plan in self.or_groups[lv]:
                derivative = ders[:, parents]
                if moduli is not None:
                    derivative %= moduli
                contribution = self._completed(derivative, gap)
                self._scatter_add(ders, c_plan, contribution)
        return ders

    def diffs(self, ders: Any) -> dict[int, list[int]]:
        """Per-variable difference vectors from the leaf derivatives,
        as exact Python ints (CRT-reconstructed in residue mode)."""
        width = self.width
        positive = _np.zeros(
            (self.n_planes, self.n_var_slots, width), dtype=self.dtype)
        negative = _np.zeros_like(positive)
        if len(self.var_rows):
            self._scatter_add(positive, self.var_scatter,
                              ders[:, self.var_rows])
        if len(self.nvar_rows):
            self._scatter_add(negative, self.nvar_scatter,
                              ders[:, self.nvar_rows])
        if self.moduli is None:
            combined = (positive - negative)[0]
            if self.dtype == _np.float64:
                combined = _np.rint(combined).astype(_np.int64)
            rows = combined.tolist()
            return {
                slot: [int(value) for value in row]
                for slot, row in enumerate(rows)
                if any(row)
            }
        residues = (positive - negative) % self._moduli_column()
        product = 1
        for prime in self.moduli:
            product *= prime
        reconstructed = None
        for plane, prime in enumerate(self.moduli):
            quotient = product // prime
            factor = quotient * pow(quotient, -1, prime)
            term = residues[plane].astype(object) * factor
            reconstructed = (
                term if reconstructed is None else reconstructed + term)
        reconstructed %= product
        half = product >> 1
        diffs: dict[int, list[int]] = {}
        for slot in range(self.n_var_slots):
            row = [
                int(value) if value <= half else int(value) - product
                for value in reconstructed[slot]
            ]
            if any(row):
                diffs[slot] = row
        return diffs

    def _sentinel_ok(self, array: Any) -> bool:
        """Runtime overflow sentinel for the native tiers: magnitudes
        must sit inside the certified budget.  (``not <=`` rather than
        ``>`` so float NaNs also fail closed.)"""
        limit = 1 << (FLOAT64_BITS if self.dtype == _np.float64
                      else INT64_BITS)
        peak = _np.abs(array).max() if array.size else 0
        return bool(peak <= limit)

    def execute(
        self, check: Callable[[], None] | None = None
    ) -> dict[int, list[int]] | None:
        """Both sweeps plus diff extraction; ``None`` when a runtime
        sentinel trips (callers fall back to the interpreted pass)."""
        vals = self.forward(check)
        if self.moduli is None and not self._sentinel_ok(vals):
            return None
        ders = self.backward(vals, check)
        if self.moduli is None and not self._sentinel_ok(ders):
            return None
        return self.diffs(ders)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tier = (
            f"crt[{len(self.moduli)}]" if self.moduli
            else _np.dtype(self.dtype).name
        )
        return (
            f"LevelPlan(slots={self.n_slots}, levels={self.n_levels}, "
            f"bits={self.bound_bits}, tier={tier})"
        )


def plan_with_reason(
    tape: GateTape, limit: int = MAX_BUFFER_ELEMENTS
) -> tuple[LevelPlan | None, str | None]:
    """The cached :class:`LevelPlan` of a tape shape plus the refusal
    reason (``None`` on success, ``"ineligible"`` / ``"budget"``
    otherwise).

    The result — including the negative one — is cached on the tape's
    shared analysis box, so isomorphic re-targets of a warm shape never
    re-plan.  Non-default budgets key a separate cache slot: a shape
    refused under a tight budget is re-planned when a looser session
    asks again.
    """
    key = "plan" if limit == MAX_BUFFER_ELEMENTS else ("plan", limit)
    cached = tape._analysis.get(key, False)
    if cached is not False:
        return cached
    try:
        entry = (LevelPlan(tape, budget_elements=limit), None)
    except _Ineligible as refusal:
        entry = (None, refusal.reason)
    tape._analysis[key] = entry
    return entry


def plan_for(tape: GateTape) -> LevelPlan | None:
    """The cached :class:`LevelPlan` of a tape shape, or ``None`` when
    the shape is ineligible (no NumPy, general negation, bounds beyond
    CRT capacity, non-decomposable AND, memory budget).
    """
    return plan_with_reason(tape)[0]


def fastpath_diffs(
    tape: GateTape,
    stats: FastpathStats | None = None,
    check: Callable[[], None] | None = None,
    budget_bytes: int | None = None,
) -> dict[int, list[int]] | None:
    """Machine-width difference vectors of ``tape``, or ``None`` when
    the shape must take the interpreted exact path.

    A non-``None`` result is byte-identical to
    :meth:`GateTape.backward_diffs` over the reference kernel (up to
    trailing zeros, which Equation 3 ignores).  ``stats`` receives one
    hit or one fallback (attributed per reason) per call.
    """
    plan, reason = plan_with_reason(tape, budget_elements(budget_bytes))
    diffs = plan.execute(check) if plan is not None else None
    if stats is not None:
        if diffs is None:
            stats.count_fallback("overflow" if plan is not None else reason)
        else:
            stats.hits += 1
    return diffs
