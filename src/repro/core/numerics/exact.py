"""The reference numeric kernel: schoolbook big-int arithmetic.

This is the kernel every other backend is parity-tested against.  It
is deliberately plain Python — unbounded ints, nested loops with
zero-skipping — because exactness and auditability matter more here
than speed; the vectorized backends win on large vectors, this one on
tiny ones (lineage counts are often single digits wide).
"""

from __future__ import annotations

from typing import Sequence

from .base import Kernel, register_kernel


class PythonKernel(Kernel):
    """Exact big-int reference backend (always available)."""

    name = "python"

    def poly_mul(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        if len(a) < len(b):  # skip zeros of the shorter operand
            a, b = b, a
        out = [0] * (len(a) + len(b) - 1)
        for j, bj in enumerate(b):
            if bj:
                for i, ai in enumerate(a):
                    if ai:
                        out[i + j] += ai * bj
        return out


register_kernel(PythonKernel, aliases=("exact", "bigint"))
