"""Compiled gate tapes: d-DNNF traversal lowered to a flat instruction
list.

The counting passes of Algorithm 1 repeatedly walk a
:class:`~repro.circuits.circuit.Circuit`: reachability, per-gate
variable-set union-finds (``gate_var_sets``), kind dispatch, and — in
the old all-facts mode — an explicitly materialized ``smooth()`` copy
whose ``(x v -x)`` padding gates can dwarf the circuit.  A
:class:`GateTape` pays all of that once per circuit *shape*: it is a
topologically ordered list of instructions carrying exactly what the
numeric passes need — the opcode, the child instruction indices, each
OR child's *gap size* (how many gate variables the child misses), and
the variable slot of each literal leaf.  Executing a tape is pure
kernel arithmetic; no circuit object is touched.

Smoothing-free counting
-----------------------
Instead of padding OR children to the gate's variable set, the tape
records the per-child gap and the kernel applies the binomial
completion factors ``C(gap, j)`` during the sweeps:

* forward — a child's counts are convolved with the Pascal row of its
  gap (exactly what the padding gates would have contributed);
* backward — the derivative flowing from an OR gate to a child is
  convolved with the same row (the padding sub-circuits' value
  polynomials);
* leaves — a positive literal's derivative adds to its variable's
  difference vector, a negated literal's subtracts.  Models in which a
  variable is *free* (the reason smoothing exists) contribute equally
  to both conditionings and cancel in the difference, so they are
  never materialized at all.

Tapes are label-agnostic up to the ``var_labels`` table, which makes
them cheap to re-target at isomorphic lineages (:meth:`with_labels` is
O(#vars) — no gate is copied), and JSON-serializable
(:meth:`to_payload` / :meth:`from_payload`) so the engine layer stores
them as a third artifact kind next to canonical CNFs and d-DNNFs.

Level schedule and magnitude bounds (payload v2)
------------------------------------------------
:meth:`level_schedule` groups the instructions into topological levels
(every instruction's children sit at strictly smaller levels), and
:meth:`bound_bits` computes a-priori magnitude bounds for both sweeps:
the forward bound of a gate is its worst-case model count (children
bounds multiply through decomposable ANDs and gap-shift-add through
ORs), and the backward bound propagates derivative magnitudes down the
same structure.  Both are what the machine-width execution tier
(:mod:`~repro.core.numerics.fixed`) needs to prove, before running, that
an entire shape fits native ``float64``/``int64`` arithmetic — or how
many CRT residue planes it needs when it does not.  The analysis is
label-agnostic and cached in a box shared across :meth:`with_labels`
re-targets, so warm cache hits never repeat it; tape payloads carry the
levels and bound bits as a *version-2* format, and version-1 payloads
(from stores written before the machine-width tier existed) are
transparently re-lowered on load.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping, Sequence

from ...circuits.circuit import (
    AND, FALSE, NOT, OR, TRUE, VAR, Circuit, CircuitError,
)
from .base import Kernel, binomial_row

#: Tape opcodes.  ``NVAR`` is a negated variable leaf (NNF literal);
#: ``NOT`` is the general complement over the child's variable count
#: (forward pass only — the derivative pass requires NNF).
OP_VAR, OP_NVAR, OP_TRUE, OP_FALSE, OP_AND, OP_OR, OP_NOT = range(7)

_LEAF_OPS = (OP_VAR, OP_NVAR, OP_TRUE, OP_FALSE)


class TapeError(CircuitError):
    """Raised on malformed tape payloads or invalid tape execution."""


class NonDecomposableTape(TapeError):
    """An AND instruction's children have overlapping variable sets."""


class GateTape:
    """One circuit shape, lowered to flat parallel instruction arrays.

    Instructions are in topological order (children strictly before
    parents); the last instruction is the root.  ``args[i]`` holds the
    variable slot for leaf ops and child instruction indices otherwise;
    ``gaps[i]`` (OR only) holds one gap size per child; ``nvars[i]`` is
    ``|Vars(g)|``; ``var_labels[slot]`` maps slots back to variable
    labels.  ``source_gates`` records the gate count of the circuit the
    tape was compiled from (benchmark/provenance stats).
    """

    __slots__ = (
        "ops", "args", "gaps", "nvars", "var_labels", "source_gates",
        "_analysis",
    )

    def __init__(
        self,
        ops: list[int],
        args: list[tuple[int, ...]],
        gaps: list[tuple[int, ...] | None],
        nvars: list[int],
        var_labels: list[Hashable],
        source_gates: int,
        analysis: dict | None = None,
    ) -> None:
        self.ops = ops
        self.args = args
        self.gaps = gaps
        self.nvars = nvars
        self.var_labels = var_labels
        self.source_gates = source_gates
        #: Label-agnostic derived data (level schedule, magnitude
        #: bounds, the compiled level plan), computed lazily and shared
        #: across :meth:`with_labels` re-targets of the same shape.
        self._analysis = analysis if analysis is not None else {}

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def root_nvars(self) -> int:
        """Number of variables mentioned by the root."""
        return self.nvars[-1] if self.ops else 0

    @property
    def is_constant(self) -> bool:
        """True when the root is a TRUE/FALSE instruction."""
        return bool(self.ops) and self.ops[-1] in (OP_TRUE, OP_FALSE)

    def labels(self) -> set[Hashable]:
        """The set of variable labels the tape mentions."""
        return set(self.var_labels)

    def with_labels(
        self, mapping: Mapping[Hashable, Hashable]
    ) -> "GateTape":
        """A re-targeted tape: same instructions, renamed variables.

        The instruction arrays are *shared* with ``self`` — this is the
        tape analogue of :meth:`~repro.circuits.circuit.Circuit.rename`
        but O(#variables) instead of O(#gates), which is what lets warm
        cache hits skip circuit traversal entirely.
        """
        return GateTape(
            self.ops,
            self.args,
            self.gaps,
            self.nvars,
            [mapping.get(label, label) for label in self.var_labels],
            self.source_gates,
            analysis=self._analysis,
        )

    # ------------------------------------------------------------------
    # Level schedule and magnitude bounds (the machine-width analysis)
    # ------------------------------------------------------------------

    def level_schedule(self) -> list[int]:
        """Topological level of every instruction (leaves are level 0;
        each instruction sits strictly above all of its children).

        Instructions sharing a level are mutually independent, which is
        what lets the machine-width tier execute a level as a handful of
        whole-level array operations instead of per-gate dispatches.
        Cached (and shared across :meth:`with_labels` re-targets).
        """
        levels = self._analysis.get("levels")
        if levels is None:
            levels = [0] * len(self.ops)
            for i, op in enumerate(self.ops):
                if op not in _LEAF_OPS:
                    args = self.args[i]
                    if args:
                        levels[i] = 1 + max(levels[c] for c in args)
            self._analysis["levels"] = levels
        return levels

    def bound_bits(self) -> tuple[int, int, int]:
        """A-priori magnitude bounds ``(forward, backward, diff)`` in
        bits, from gate fan-in structure alone.

        * *forward*: ``fb[g]`` bounds every ``#SAT_k`` entry of gate
          ``g`` — children bounds multiply through ANDs (decomposable
          products) and sum with their ``2^gap`` completion factors
          through ORs, so ``fb[g]`` is exactly the worst-case model
          count of ``g`` over ``Vars(g)``;
        * *backward*: ``db[g]`` bounds the derivative entries — the
          root starts at 1, OR edges multiply by ``2^gap``, AND edges by
          the sibling product of forward bounds;
        * *diff*: per-variable difference vectors sum the backward
          bounds of the variable's literal leaves.

        All partial sums in both sweeps are non-negative and bounded by
        these final values (the diff accumulation by the *sum* of its
        contributions' bounds), so the maximum of the three is a sound
        bit-width certificate for the whole computation.  Cached and
        label-agnostic — and always *computed* from the instruction
        arrays, never read back from a stored payload: a tape artifact
        with understated bounds must not be able to arm native
        arithmetic it cannot certify.
        """
        cached = self._analysis.get("bound_bits")
        if cached is not None:
            return cached
        forward = self.forward_bounds()
        backward = [0] * len(self.ops)
        diff: dict[int, int] = {}
        if self.ops:
            backward[-1] = 1
        for i in range(len(self.ops) - 1, -1, -1):
            op = self.ops[i]
            d = backward[i]
            if not d:
                continue
            if op == OP_OR:
                for child, gap in zip(self.args[i], self.gaps[i]):
                    backward[child] += d << gap
            elif op in (OP_AND, OP_NOT):
                children = self.args[i]
                prefix = [1]
                for child in children[:-1]:
                    prefix.append(prefix[-1] * forward[child])
                suffix = 1
                for index in range(len(children) - 1, -1, -1):
                    child = children[index]
                    backward[child] += d * prefix[index] * suffix
                    suffix *= forward[child]
            elif op in (OP_VAR, OP_NVAR):
                slot = self.args[i][0]
                diff[slot] = diff.get(slot, 0) + d
        bits = (
            max((b.bit_length() for b in forward), default=0),
            max((b.bit_length() for b in backward), default=0),
            max((b.bit_length() for b in diff.values()), default=0),
        )
        self._analysis["bound_bits"] = bits
        return bits

    def forward_bounds(self) -> list[int]:
        """Worst-case model count of every instruction (exact big
        ints); entry ``i`` bounds each coefficient of ``vals[i]`` in
        :meth:`forward`.  Cached and label-agnostic."""
        forward = self._analysis.get("forward_bounds")
        if forward is None:
            forward = [0] * len(self.ops)
            for i, op in enumerate(self.ops):
                if op in (OP_VAR, OP_NVAR, OP_TRUE):
                    forward[i] = 1
                elif op == OP_FALSE:
                    forward[i] = 0
                elif op == OP_AND:
                    product = 1
                    for child in self.args[i]:
                        product *= forward[child]
                    forward[i] = product
                elif op == OP_OR:
                    forward[i] = sum(
                        forward[child] << gap
                        for child, gap in zip(self.args[i], self.gaps[i])
                    )
                else:  # OP_NOT: complement over the gate's variable set
                    forward[i] = 1 << self.nvars[i]
            self._analysis["forward_bounds"] = forward
        return forward

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def forward(
        self,
        kernel: Kernel,
        check: Callable[[], None] | None = None,
    ) -> list[list[int]]:
        """The ``ComputeAll#SATk`` induction (Lemma 4.5) over the tape.

        Returns one count vector per instruction; ``check`` (if given)
        is invoked periodically so long sweeps can honour deadlines.
        """
        vals: list[list[int]] = [None] * len(self.ops)  # type: ignore[list-item]
        for i, op in enumerate(self.ops):
            if check is not None and not i & 0x1FF:
                check()
            if op == OP_VAR:
                vals[i] = [0, 1]
            elif op == OP_NVAR:
                vals[i] = [1, 0]
            elif op == OP_TRUE:
                vals[i] = [1]
            elif op == OP_FALSE:
                vals[i] = [0]
            elif op == OP_AND:
                acc = [1]
                for child in self.args[i]:
                    acc = kernel.poly_mul(acc, vals[child])
                if len(acc) != self.nvars[i] + 1:
                    raise NonDecomposableTape(
                        f"AND instruction {i}: children variable sets overlap"
                    )
                vals[i] = acc
            elif op == OP_OR:
                vals[i] = kernel.or_accumulate(
                    self.nvars[i],
                    [vals[child] for child in self.args[i]],
                    self.gaps[i],
                )
            else:  # OP_NOT: complement over the gate's variable count
                child_vals = vals[self.args[i][0]]
                row = binomial_row(self.nvars[i])
                vals[i] = [row[l] - child_vals[l] for l in range(len(row))]
        return vals

    def root_counts(self, kernel: Kernel) -> tuple[list[int], int]:
        """``(#SAT_k vector of the root, |Vars(root)|)``."""
        if not self.ops:
            raise TapeError("empty tape has no root")
        return self.forward(kernel)[-1], self.root_nvars

    def backward_diffs(
        self,
        kernel: Kernel,
        vals: Sequence[Sequence[int]],
        check: Callable[[], None] | None = None,
    ) -> dict[int, list[int]]:
        """The circuit-derivative sweep, accumulated per variable slot.

        Returns ``diffs[slot][m]`` = ``#SAT_m(C[x->1]) -
        #SAT_m(C[x->0])`` over ``Vars(C) \\ {x}`` — exactly the
        difference vector Equation 3 consumes, with free-variable
        (padding) contributions already cancelled.
        """
        ders: list[list[int] | None] = [None] * len(self.ops)
        ders[-1] = [1]
        diffs: dict[int, list[int]] = {}
        for i in range(len(self.ops) - 1, -1, -1):
            if check is not None and not i & 0x1FF:
                check()
            d = ders[i]
            if d is None or not any(d):
                continue
            op = self.ops[i]
            if op == OP_OR:
                for child, gap in zip(self.args[i], self.gaps[i]):
                    contribution = (
                        d if gap == 0
                        else kernel.poly_mul(d, binomial_row(gap))
                    )
                    ders[child] = kernel.poly_add(ders[child], contribution)
            elif op == OP_AND:
                children = self.args[i]
                # prefix/suffix products of sibling value polynomials
                prefix: list[Sequence[int]] = [[1]]
                for child in children[:-1]:
                    prefix.append(kernel.poly_mul(prefix[-1], vals[child]))
                suffix: Sequence[int] = [1]
                for index in range(len(children) - 1, -1, -1):
                    sibling_product = kernel.poly_mul(prefix[index], suffix)
                    contribution = kernel.poly_mul(d, sibling_product)
                    child = children[index]
                    ders[child] = kernel.poly_add(ders[child], contribution)
                    if index:
                        suffix = kernel.poly_mul(suffix, vals[child])
            elif op == OP_VAR:
                slot = self.args[i][0]
                diffs[slot] = kernel.poly_add(diffs.get(slot), d)
            elif op == OP_NVAR:
                slot = self.args[i][0]
                diffs[slot] = kernel.poly_add(
                    diffs.get(slot), [-value for value in d]
                )
            elif op == OP_NOT:
                raise TapeError(
                    "derivative pass requires NNF circuits "
                    "(negation above variables only)"
                )
            # TRUE/FALSE: constants absorb their derivative.
        return diffs

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    #: Tape payload format written by :meth:`to_payload`.  Version 2
    #: added the level schedule and magnitude-bound bits; version-1
    #: payloads are still accepted and re-lowered on load.
    PAYLOAD_FORMAT = 2

    def to_payload(self) -> dict:
        """A JSON-serializable rendering (labels must be serializable;
        the engine layer only stores *canonical* tapes, whose labels
        are small ints).

        Writes format version 2: alongside the instruction arrays, the
        payload carries the topological ``levels`` (consumed by the
        machine-width execution schedule, so warm processes skip that
        pass) and the a-priori magnitude bounds in bits (advisory
        metadata — arithmetic selection always recomputes its own
        certificate from the instructions).
        """
        forward_bits, backward_bits, diff_bits = self.bound_bits()
        return {
            "format": self.PAYLOAD_FORMAT,
            "ops": list(self.ops),
            "args": [list(arg) for arg in self.args],
            "gaps": [list(gap) if gap is not None else None
                     for gap in self.gaps],
            "nvars": list(self.nvars),
            "var_labels": list(self.var_labels),
            "source_gates": self.source_gates,
            "levels": list(self.level_schedule()),
            "bounds": {
                "forward_bits": forward_bits,
                "backward_bits": backward_bits,
                "diff_bits": diff_bits,
            },
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "GateTape":
        """Rebuild a tape written by :meth:`to_payload`, raising
        :class:`TapeError` on any malformation so callers can treat
        truncated/corrupt artifacts as cache misses.

        Both payload formats load: a version-1 payload (no ``levels`` /
        ``bounds``) is *re-lowered* — the level schedule and bounds are
        recomputed from the instruction arrays — so stores written
        before the machine-width tier existed keep serving hits instead
        of recompiling.
        """
        try:
            ops = list(payload["ops"])
            args = list(payload["args"])
            gaps = list(payload["gaps"])
            nvars = list(payload["nvars"])
            var_labels = list(payload["var_labels"])
            source_gates = payload["source_gates"]
        except (KeyError, TypeError) as exc:
            raise TapeError(f"malformed tape payload: {exc}") from None
        if not (len(ops) == len(args) == len(gaps) == len(nvars)):
            raise TapeError("malformed tape payload: ragged instruction arrays")
        if not ops:
            raise TapeError("malformed tape payload: empty tape")
        if not isinstance(source_gates, int) or source_gates < 0:
            raise TapeError("malformed tape payload: bad source_gates")
        checked_args: list[tuple[int, ...]] = []
        checked_gaps: list[tuple[int, ...] | None] = []
        n_slots = len(var_labels)
        try:
            cls._validate_instructions(
                ops, args, gaps, nvars, n_slots, checked_args, checked_gaps
            )
        except TypeError as exc:
            # Schema-invalid entries (a non-list args row, a scalar gap
            # list, ...) must read as corruption, never crash a load.
            raise TapeError(f"malformed tape payload: {exc}") from None
        tape = cls(ops, checked_args, checked_gaps, nvars, var_labels,
                   source_gates)
        if "levels" in payload or "bounds" in payload:
            tape._load_analysis(payload, checked_args)
        return tape

    def _load_analysis(
        self, payload: Mapping, args: Sequence[tuple[int, ...]]
    ) -> None:
        """Validate and adopt a v2 payload's levels/bounds.

        The levels must be a consistent topological schedule and the
        bound bits well-formed, else the artifact reads as corrupt.
        Any valid topological leveling yields correct execution, so the
        loaded schedule is adopted as-is; the *bounds* are kept as
        advisory metadata only (``payload_bound_bits``) — the
        machine-width tier's arithmetic-selection certificate is always
        re-derived from the instruction arrays by exact big-int
        analysis (:meth:`bound_bits`), so a stale or understated
        ``bounds`` entry can never cause overflowing arithmetic to be
        chosen.
        """
        try:
            levels = list(payload["levels"])
            bounds = payload["bounds"]
            bits = tuple(
                bounds[key]
                for key in ("forward_bits", "backward_bits", "diff_bits")
            )
        except (KeyError, TypeError) as exc:
            raise TapeError(f"malformed tape payload: {exc}") from None
        if len(levels) != len(self.ops):
            raise TapeError("malformed tape payload: ragged level array")
        if any(not isinstance(b, int) or b < 0 for b in bits):
            raise TapeError("malformed tape payload: bad bound bits")
        for i, (op, level) in enumerate(zip(self.ops, levels)):
            if not isinstance(level, int) or level < 0:
                raise TapeError(f"malformed tape payload: level[{i}]")
            if op not in _LEAF_OPS and any(
                levels[c] >= level for c in args[i]
            ):
                raise TapeError(
                    f"malformed tape payload: level[{i}] not topological"
                )
        self._analysis["levels"] = levels
        self._analysis["payload_bound_bits"] = bits

    @staticmethod
    def _validate_instructions(
        ops: Sequence[int],
        args: Sequence[Sequence[int]],
        gaps: Sequence[Sequence[int] | None],
        nvars: Sequence[int],
        n_slots: int,
        checked_args: list[tuple[int, ...]],
        checked_gaps: list[tuple[int, ...] | None],
    ) -> None:
        for i, (op, arg, gap, nv) in enumerate(zip(ops, args, gaps, nvars)):
            if op not in range(7):
                raise TapeError(f"malformed tape payload: opcode {op!r}")
            if not isinstance(nv, int) or nv < 0:
                raise TapeError(f"malformed tape payload: nvars[{i}]")
            arg = tuple(arg)
            if op in (OP_VAR, OP_NVAR):
                ok = (len(arg) == 1 and isinstance(arg[0], int)
                      and 0 <= arg[0] < n_slots)
            elif op in (OP_TRUE, OP_FALSE):
                ok = not arg
            elif op == OP_NOT:
                ok = len(arg) == 1
            else:
                ok = True
            if op in (OP_AND, OP_OR, OP_NOT):
                ok = ok and all(
                    isinstance(c, int) and 0 <= c < i for c in arg
                )
            if not ok:
                raise TapeError(
                    f"malformed tape payload: instruction {i} has bad args"
                )
            if op == OP_OR:
                if gap is None or len(gap) != len(arg) or any(
                    not isinstance(g, int) or g < 0 for g in gap
                ):
                    raise TapeError(
                        f"malformed tape payload: instruction {i} has bad gaps"
                    )
                checked_gaps.append(tuple(gap))
            else:
                if gap is not None:
                    raise TapeError(
                        f"malformed tape payload: instruction {i} has gaps"
                    )
                checked_gaps.append(None)
            checked_args.append(arg)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GateTape(instructions={len(self.ops)}, "
            f"vars={len(self.var_labels)}, root_nvars={self.root_nvars})"
        )


def compile_tape(circuit: Circuit, root: int | None = None) -> GateTape:
    """Lower the gates reachable from ``root`` into a :class:`GateTape`.

    One full circuit traversal (reachability + variable sets) happens
    here, once; every later execution of the tape touches only the flat
    arrays.  The circuit is assumed deterministic and decomposable —
    the same contract as
    :func:`~repro.circuits.dnnf.count_models_by_size`, whose dynamic
    program this lowers.
    """
    if root is None:
        root = circuit.output_gate()
    var_sets = circuit.gate_var_sets(root)
    ops: list[int] = []
    args: list[tuple[int, ...]] = []
    gaps: list[tuple[int, ...] | None] = []
    nvars: list[int] = []
    var_labels: list[Hashable] = []
    slot_of: dict[Hashable, int] = {}
    index: dict[int, int] = {}

    def emit(op: int, arg: tuple[int, ...], gap: tuple[int, ...] | None,
             nv: int) -> int:
        ops.append(op)
        args.append(arg)
        gaps.append(gap)
        nvars.append(nv)
        return len(ops) - 1

    for gate in sorted(var_sets):
        kind = circuit.kind(gate)
        vset = var_sets[gate]
        if kind == VAR:
            label = circuit.label(gate)
            slot = slot_of.get(label)
            if slot is None:
                slot = slot_of[label] = len(var_labels)
                var_labels.append(label)
            index[gate] = emit(OP_VAR, (slot,), None, 1)
        elif kind == TRUE:
            index[gate] = emit(OP_TRUE, (), None, 0)
        elif kind == FALSE:
            index[gate] = emit(OP_FALSE, (), None, 0)
        elif kind == NOT:
            child = circuit.children(gate)[0]
            if circuit.kind(child) == VAR:
                label = circuit.label(child)
                slot = slot_of.get(label)
                if slot is None:
                    slot = slot_of[label] = len(var_labels)
                    var_labels.append(label)
                index[gate] = emit(OP_NVAR, (slot,), None, 1)
            else:
                index[gate] = emit(
                    OP_NOT, (index[child],), None, len(vset)
                )
        elif kind == AND:
            index[gate] = emit(
                OP_AND,
                tuple(index[c] for c in circuit.children(gate)),
                None,
                len(vset),
            )
        else:  # OR
            children = circuit.children(gate)
            index[gate] = emit(
                OP_OR,
                tuple(index[c] for c in children),
                tuple(len(vset) - len(var_sets[c]) for c in children),
                len(vset),
            )
    return GateTape(ops, args, gaps, nvars, var_labels, len(var_sets))
