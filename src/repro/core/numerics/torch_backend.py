"""Optional torch backend for the batched machine-width sweeps.

The batched level-scheduled execution of
:mod:`~repro.core.numerics.batched` is a sequence of dense tensor
operations — sliding-window matmuls, banded completions, scatter-adds —
that map directly onto torch (and through it, CUDA) with no custom
kernels: the float64 tier hits cuBLAS ``matmul``; the integer tiers
use unfold + multiply + sum because torch has no int64 ``matmul`` on
either device (the a-priori magnitude bounds that certify the NumPy
tier certify the same products here, so the mul+sum contraction cannot
wrap).  Scatter-adds become ``index_add_``, which accumulates
duplicate indices natively.

torch is an *optional* dependency with the same graceful-degradation
contract as NumPy: without it, :data:`HAS_TORCH` is False, the
``"torch"`` kernel name resolves down the ladder
(``torch → int64 → python``), and the batched executor silently keeps
its NumPy path — selection is a performance knob, never a correctness
switch.  Results are converted back to NumPy arrays so the per-lane
sentinels and CRT diff extraction stay byte-identical to every other
backend.

Device selection is automatic: CUDA when ``torch.cuda.is_available()``,
CPU otherwise.
"""

from __future__ import annotations

from typing import Any, Callable

from .base import register_kernel
from .fixed import Int64Kernel, LevelPlan, _np

try:  # pragma: no cover - exercised only on the with-torch CI tier
    import torch as _torch

    HAS_TORCH = True
except Exception:  # pragma: no cover - the default tier in this repo
    _torch = None
    HAS_TORCH = False

__all__ = ["HAS_TORCH", "TorchKernel", "execute_batch"]


class TorchKernel(Int64Kernel):
    """The ``"torch"`` numeric backend.

    Per-call primitives are inherited from :class:`Int64Kernel`
    unchanged (they are already machine-width and overflow-guarded;
    shipping single polynomial products to a device would lose to
    transfer latency).  What the name *selects* is the device-side
    batched sweep: the batched executor routes its whole-group
    forward/backward passes through :func:`execute_batch` when this
    kernel is active.
    """

    name = "torch"


register_kernel(TorchKernel)


def _device() -> Any:  # pragma: no cover - needs torch
    if _torch.cuda.is_available():
        return _torch.device("cuda")
    return _torch.device("cpu")


def _full_scatter_index(plan: tuple) -> Any:
    """The original (possibly duplicated) target list of a LevelPlan
    scatter plan, plus the column order to apply first — the form
    ``index_add_`` wants."""
    if plan[1] is None:
        return plan[0], None
    targets, order, starts = plan
    counts = _np.diff(_np.append(starts, len(order)))
    return _np.repeat(targets, counts), order


class _TorchPlan:  # pragma: no cover - needs torch
    """Per-(plan, device) tensor mirrors of a LevelPlan's index arrays
    and coefficient tables, built once and cached on the plan."""

    def __init__(self, plan: LevelPlan, device: Any) -> None:
        self.plan = plan
        self.device = device
        self.is_float = plan.moduli is None and plan.dtype == _np.float64
        self.dtype = _torch.float64 if self.is_float else _torch.int64
        as_index = lambda arr: _torch.as_tensor(
            _np.ascontiguousarray(arr), dtype=_torch.int64, device=device)
        self.var_rows = as_index(plan.var_rows)
        self.nvar_rows = as_index(plan.nvar_rows)
        self.true_rows = as_index(plan.true_rows)
        if plan.moduli is None:
            self.moduli = None
        else:
            self.moduli = _torch.tensor(
                plan.moduli, dtype=_torch.int64, device=device
            ).view(-1, 1, 1)
        self.and_groups: list[tuple | None] = []
        for group in plan.and_groups:
            if group is None:
                self.and_groups.append(None)
                continue
            (out, left, right, max_left, max_right, max_der,
             left_plan, right_plan) = group
            self.and_groups.append((
                as_index(out), as_index(left), as_index(right),
                max_left, max_right, max_der,
                self._scatter(left_plan), self._scatter(right_plan),
            ))
        self.or_groups: list[list[tuple]] = []
        for groups in plan.or_groups:
            self.or_groups.append([
                (gap, as_index(parents), as_index(children),
                 self._scatter(p_plan), self._scatter(c_plan))
                for gap, parents, children, p_plan, c_plan in groups
            ])
        self.scatter_levels = [
            as_index(rows) if rows is not None else None
            for rows in plan.scatter_levels
        ]
        self._rows: dict[int, Any] = {}
        self._mats: dict[int, Any] = {}

    def _scatter(self, numpy_plan: tuple) -> tuple:
        targets, order = _full_scatter_index(numpy_plan)
        return (
            _torch.as_tensor(
                _np.ascontiguousarray(targets),
                dtype=_torch.int64, device=self.device),
            None if order is None else _torch.as_tensor(
                _np.ascontiguousarray(order),
                dtype=_torch.int64, device=self.device),
        )

    def gap_row(self, gap: int) -> Any:
        """Pascal-row coefficients of ``gap`` (per plane in CRT mode)
        as a device tensor."""
        row = self._rows.get(gap)
        if row is None:
            coeffs = self.plan._gap_coefficients(gap)
            row = _torch.as_tensor(
                _np.ascontiguousarray(coeffs),
                dtype=self.dtype, device=self.device)
            self._rows[gap] = row
        return row

    def gap_matrix(self, gap: int) -> Any:
        """Banded completion matrix of ``gap`` (float tier only)."""
        matrix = self._mats.get(gap)
        if matrix is None:
            matrix = _torch.as_tensor(
                _np.ascontiguousarray(self.plan._gap_matrix(gap, 0)),
                dtype=self.dtype, device=self.device)
            self._mats[gap] = matrix
        return matrix


def _torch_plan(plan: LevelPlan, device: Any):  # pragma: no cover
    cache = getattr(plan, "_torch_plans", None)
    if cache is None:
        cache = plan._torch_plans = {}
    state = cache.get(str(device))
    if state is None:
        state = cache[str(device)] = _TorchPlan(plan, device)
    return state


def _conv4(state, short, long, n_terms: int):  # pragma: no cover
    """Truncated convolution along the last axis, batched over
    ``(batch, planes, rows)`` — unfold + contract."""
    batch, planes, rows, width = long.shape
    padded = _torch.zeros(
        (batch, planes, rows, width + n_terms - 1),
        dtype=long.dtype, device=long.device)
    padded[..., n_terms - 1:] = long
    wins = padded.unfold(3, width, 1)           # (B, P, E, n_terms, W)
    coeffs = _torch.flip(short[..., :n_terms], dims=(-1,))
    if state.is_float:
        return _torch.matmul(coeffs.unsqueeze(-2), wins).squeeze(-2)
    # No int64 matmul on either torch device: contract explicitly.
    # Safe by the same a-priori bounds that certify the NumPy tier.
    return (coeffs.unsqueeze(-1) * wins).sum(dim=-2)


def _scatter_add4(buffer, scatter: tuple, contribution) -> None:  # pragma: no cover
    targets, order = scatter
    if order is not None:
        contribution = contribution.index_select(2, order)
    buffer.index_add_(2, targets, contribution)


def _completed4(state, gathered, gap: int):  # pragma: no cover
    plan = state.plan
    if gap == 0:
        return gathered
    width = plan.width
    n_terms = min(gap + 1, width)
    if state.is_float and n_terms * 4 > width:
        return _torch.matmul(gathered, state.gap_matrix(gap))
    coeffs = state.gap_row(gap)
    out = _torch.zeros_like(gathered)
    if plan.moduli is None:
        for j in range(n_terms):
            out[..., j:] += coeffs[j] * gathered[..., :width - j]
        return out
    for j in range(n_terms):
        out[..., j:] += (
            coeffs[:, j].view(-1, 1, 1) * gathered[..., :width - j])
    out %= state.moduli
    return out


def execute_batch(
    plan: LevelPlan, batch: int, check: Callable[[], None] | None = None
):  # pragma: no cover - needs torch (mirrored by the NumPy path)
    """Both batched sweeps of ``plan`` on the torch device; returns
    ``(vals, ders)`` as NumPy arrays of shape
    ``(batch, planes, slots, width)`` so sentinels and diff extraction
    run unchanged."""
    state = _torch_plan(plan, _device())
    moduli = state.moduli
    vals = _torch.zeros(
        (batch, plan.n_planes, plan.n_slots, plan.width),
        dtype=state.dtype, device=state.device)
    if len(plan.var_rows):
        vals[:, :, state.var_rows, 1] = 1
    if len(plan.nvar_rows):
        vals[:, :, state.nvar_rows, 0] = 1
    vals[:, :, state.true_rows, 0] = 1
    for lv in range(1, plan.n_levels):
        if check is not None:
            check()
        group = state.and_groups[lv]
        if group is not None:
            out, left, right, max_left = group[:4]
            product = _conv4(
                state, vals[:, :, left], vals[:, :, right], max_left)
            if moduli is not None:
                product %= moduli
            vals[:, :, out] = product
        for gap, parents, children, p_scatter, _ in state.or_groups[lv]:
            completed = _completed4(state, vals[:, :, children], gap)
            _scatter_add4(vals, p_scatter, completed)
        if moduli is not None and state.scatter_levels[lv] is not None:
            vals[:, :, state.scatter_levels[lv]] %= moduli

    ders = _torch.zeros_like(vals)
    ders[:, :, plan.n_instructions - 1, 0] = 1
    for lv in range(plan.n_levels - 1, 0, -1):
        if check is not None:
            check()
        group = state.and_groups[lv]
        if group is not None:
            (out, left, right, max_left, max_right, max_der,
             left_scatter, right_scatter) = group
            derivative = ders[:, :, out]
            if moduli is not None:
                derivative %= moduli
            for sources, tgt_scatter, max_sib in (
                (right, left_scatter, max_right),
                (left, right_scatter, max_left),
            ):
                siblings = vals[:, :, sources]
                if max_der < max_sib:
                    contribution = _conv4(
                        state, derivative, siblings, max_der)
                else:
                    contribution = _conv4(
                        state, siblings, derivative, max_sib)
                if moduli is not None:
                    contribution %= moduli
                _scatter_add4(ders, tgt_scatter, contribution)
        for gap, parents, children, _, c_scatter in state.or_groups[lv]:
            derivative = ders[:, :, parents]
            if moduli is not None:
                derivative %= moduli
            contribution = _completed4(state, derivative, gap)
            _scatter_add4(ders, c_scatter, contribution)
    return vals.cpu().numpy(), ders.cpu().numpy()
