"""Cross-answer batched LevelPlan execution (the PR 8 tentpole).

A warm ``explain_many`` batch routinely contains dozens of answers
whose lineages share one tape *shape* — the fig7/IMDB regime of the
source paper, where many facts of one query instance reuse one lineage
circuit.  PR 5's :class:`~.fixed.LevelPlan` already executes one such
shape as a handful of whole-level array operations over a
``(planes, slots, width)`` SoA buffer; this module adds the batch
axis: :class:`BatchLevelPlan` runs the forward and backward sweeps of
*all* answers of one shape group over ``(batch, planes, slots, width)``
buffers — one sliding-window matmul / banded product / ``reduceat``
scatter per level for the whole batch — so the per-level Python
dispatch that dominates small warm shapes is paid once per group
instead of once per answer.

Exactness is preserved lane by lane: the runtime overflow sentinels of
the native tiers are evaluated *per lane*, so a single answer that
trips a sentinel falls back individually to the interpreted exact
kernels (its lane returns ``None``) while its siblings keep their
machine-width results.  Because :class:`~.fixed.LevelPlan` execution is
label-agnostic — leaf initialisation reads only plan index arrays,
never per-answer data — lanes of one shape group are provably
identical; :meth:`BatchLevelPlan.execute` therefore shares lane 0's
diff extraction (the Python-heavy CRT reconstruction) with every lane
whose buffers compare equal, verified with explicit ``array_equal``
checks rather than assumed.

The whole-batch buffer respects the same memory budget as a single
plan: groups whose ``batch * lane_elements`` footprint exceeds the
budget execute in chunks.

An optional ``torch`` backend (CUDA when available, CPU otherwise) can
take over the batched sweeps — see
:mod:`~repro.core.numerics.torch_backend`; absent torch, requests fall
back to the NumPy path below with no behaviour change.

This module is in the REP003 lint scope: like the exact kernels, it
must not introduce float literals — all arithmetic stays integral (the
float64 *tier* is selected by dtype object, never by a literal).
"""

from __future__ import annotations

from typing import Callable, Sequence

from .fixed import (
    FastpathStats, LevelPlan, _np, _windows,
    budget_elements, plan_with_reason,
)
from .tape import GateTape

__all__ = ["BatchLevelPlan", "batched_fastpath_diffs"]


def _same_shape(tape: GateTape, other: GateTape) -> bool:
    """Whether two tapes share one executable shape.

    Warm engine groups share the analysis box outright (``with_labels``
    re-targets); independently compiled isomorphic tapes compare their
    instruction arrays instead (labels are irrelevant — plan execution
    never reads them)."""
    return tape._analysis is other._analysis or (
        tape.ops == other.ops
        and tape.args == other.args
        and tape.gaps == other.gaps
        and tape.nvars == other.nvars
    )


class BatchLevelPlan:
    """A :class:`~.fixed.LevelPlan` executed over a batch axis.

    Wraps one compiled plan and a lane count; the sweeps mirror the
    single-answer methods exactly, with every buffer carrying a leading
    ``batch`` dimension and every gather/scatter moved one axis right.
    """

    def __init__(
        self, plan: LevelPlan, batch: int, backend: str | None = None
    ) -> None:
        self.plan = plan
        self.batch = batch
        self.backend = backend

    # -- 4D primitives ---------------------------------------------------

    @staticmethod
    def _conv4(short, long, n_terms: int):
        """Batched truncated convolution along the last axis — the 4D
        twin of :meth:`LevelPlan._conv`: one matmul over sliding-window
        views of the zero-padded ``long``, for every lane at once."""
        batch, planes, rows, width = long.shape
        padded = _np.zeros(
            (batch, planes, rows, width + n_terms - 1), dtype=long.dtype)
        padded[..., n_terms - 1:] = long
        wins = _windows(padded, width, axis=3)      # (B, P, E, n_terms, W)
        coeffs = short[..., n_terms - 1::-1]        # reversed prefix
        return _np.matmul(coeffs[..., None, :], wins)[..., 0, :]

    @staticmethod
    def _scatter_add4(buffer, plan: tuple, contribution) -> None:
        """``buffer[:, :, targets] += contribution`` under a scatter
        plan precompiled by :class:`LevelPlan` (slot axis is now 2)."""
        if plan[1] is None:
            buffer[:, :, plan[0]] += contribution
            return
        targets, order, starts = plan
        reduced = _np.add.reduceat(
            contribution[:, :, order], starts, axis=2)
        buffer[:, :, targets] += reduced

    def _moduli4(self):
        # (P, 1, 1) right-aligns against (B, P, E, W): the plane axis
        # lands on axis -3, exactly where the batch layout keeps it.
        return self.plan._moduli_column()

    def _completed4(self, gathered, gap: int):
        """``gathered`` convolved with the Pascal row of ``gap``, per
        plane and lane (identity when ``gap == 0``)."""
        plan = self.plan
        if gap == 0:
            return gathered
        width = plan.width
        n_terms = min(gap + 1, width)
        if n_terms * 4 > width:
            if plan.moduli is None:
                return gathered @ plan._gap_matrix(gap, 0)
            matrices = _np.stack([
                plan._gap_matrix(gap, p) for p in range(plan.n_planes)])
            out = _np.matmul(gathered, matrices)    # (B,P,E,W) @ (P,W,W)
            out %= self._moduli4()
            return out
        coeffs = plan._gap_coefficients(gap)
        out = _np.zeros_like(gathered)
        if plan.moduli is None:
            for j in range(n_terms):
                out[..., j:] += coeffs[j] * gathered[..., :width - j]
            return out
        for j in range(n_terms):
            out[..., j:] += (
                coeffs[:, j, None, None] * gathered[..., :width - j])
        out %= self._moduli4()
        return out

    # -- sweeps ------------------------------------------------------------

    def forward(self, check: Callable[[], None] | None = None):
        """The whole-batch ``ComputeAll#SATk`` sweep: one 4D value
        buffer, one array op per level for every lane at once."""
        plan = self.plan
        vals = _np.zeros(
            (self.batch, plan.n_planes, plan.n_slots, plan.width),
            dtype=plan.dtype)
        if len(plan.var_rows):
            vals[:, :, plan.var_rows, 1] = 1
        if len(plan.nvar_rows):
            vals[:, :, plan.nvar_rows, 0] = 1
        vals[:, :, plan.true_rows, 0] = 1
        moduli = self._moduli4()
        for lv in range(1, plan.n_levels):
            if check is not None:
                check()
            group = plan.and_groups[lv]
            if group is not None:
                out, left, right, max_left = group[:4]
                product = self._conv4(
                    vals[:, :, left], vals[:, :, right], max_left)
                if moduli is not None:
                    product %= moduli
                vals[:, :, out] = product
            for gap, parents, children, p_plan, _ in plan.or_groups[lv]:
                completed = self._completed4(vals[:, :, children], gap)
                self._scatter_add4(vals, p_plan, completed)
            if moduli is not None and plan.scatter_levels[lv] is not None:
                vals[:, :, plan.scatter_levels[lv]] %= moduli
        return vals

    def backward(self, vals, check: Callable[[], None] | None = None):
        """The whole-batch derivative sweep over ``vals``."""
        plan = self.plan
        ders = _np.zeros_like(vals)
        ders[:, :, plan.n_instructions - 1, 0] = 1
        moduli = self._moduli4()
        for lv in range(plan.n_levels - 1, 0, -1):
            if check is not None:
                check()
            group = plan.and_groups[lv]
            if group is not None:
                (out, left, right, max_left, max_right, max_der,
                 left_plan, right_plan) = group
                derivative = ders[:, :, out]
                if moduli is not None:
                    derivative %= moduli
                for sources, tgt_plan, max_sib in (
                    (right, left_plan, max_right),
                    (left, right_plan, max_left),
                ):
                    siblings = vals[:, :, sources]
                    if max_der < max_sib:
                        contribution = self._conv4(
                            derivative, siblings, max_der)
                    else:
                        contribution = self._conv4(
                            siblings, derivative, max_sib)
                    if moduli is not None:
                        contribution %= moduli
                    self._scatter_add4(ders, tgt_plan, contribution)
            for gap, parents, children, _, c_plan in plan.or_groups[lv]:
                derivative = ders[:, :, parents]
                if moduli is not None:
                    derivative %= moduli
                contribution = self._completed4(derivative, gap)
                self._scatter_add4(ders, c_plan, contribution)
        return ders

    # -- execution ---------------------------------------------------------

    def _sweeps(self, check: Callable[[], None] | None):
        """Both sweeps through the selected backend; always returns
        NumPy arrays so diff extraction and sentinels stay uniform."""
        if self.backend == "torch":
            from .torch_backend import HAS_TORCH, execute_batch
            if HAS_TORCH:
                return execute_batch(self.plan, self.batch, check)
        vals = self.forward(check)
        return vals, self.backward(vals, check)

    def execute(
        self, check: Callable[[], None] | None = None
    ) -> list[dict[int, list[int]] | None]:
        """Both sweeps plus per-lane diff extraction.

        Returns one entry per lane: the difference-vector dict, or
        ``None`` when that lane's runtime sentinel tripped (the caller
        falls back to the interpreted pass for that answer alone).
        Lanes whose buffers compare equal to lane 0 — always the case
        for one shape group, since plan execution is label-agnostic —
        share lane 0's extraction instead of re-running the CRT
        reconstruction per lane.
        """
        plan = self.plan
        vals, ders = self._sweeps(check)
        results: list[dict[int, list[int]] | None] = []
        native = plan.moduli is None
        for lane in range(self.batch):
            if check is not None:
                check()
            if (
                results
                and _np.array_equal(ders[lane], ders[0])
                and _np.array_equal(vals[lane], vals[0])
            ):
                results.append(results[0])
                continue
            if native and not (
                plan._sentinel_ok(vals[lane])
                and plan._sentinel_ok(ders[lane])
            ):
                results.append(None)
                continue
            results.append(plan.diffs(ders[lane]))
        return results


def batched_fastpath_diffs(
    tapes: Sequence[GateTape],
    stats: FastpathStats | None = None,
    check: Callable[[], None] | None = None,
    budget_bytes: int | None = None,
    backend: str | None = None,
) -> list[dict[int, list[int]] | None] | None:
    """Machine-width difference vectors for a same-shape answer group.

    ``tapes`` are the re-targeted handles of one shape group (they
    share a plan).  Returns one entry per tape — the diff dict, or
    ``None`` for a lane whose runtime sentinel tripped (that answer
    falls back individually) — or ``None`` for the whole group when the
    shape itself is ineligible for the fast path.

    Groups larger than the SoA memory budget execute in chunks, so the
    whole-batch buffer never exceeds what a single plan was allowed.
    ``stats`` receives one hit or one per-reason fallback per lane.
    """
    if not tapes:
        return []
    first = tapes[0]
    strays = [i for i in range(1, len(tapes))
              if not _same_shape(tapes[i], first)]
    if strays:
        # Defensive: the engine only ever groups one shape, but the
        # public API tolerates mixed input — stray shapes re-group
        # recursively and the merged output keeps caller order.
        stray_set = set(strays)
        group = [i for i in range(len(tapes)) if i not in stray_set]
        merged: list[dict[int, list[int]] | None] = [None] * len(tapes)
        for indices in (group, strays):
            part = batched_fastpath_diffs(
                [tapes[i] for i in indices], stats, check,
                budget_bytes, backend)
            for slot, entry in zip(indices, part or [None] * len(indices)):
                merged[slot] = entry
        return merged
    limit = budget_elements(budget_bytes)
    plan, reason = plan_with_reason(first, limit)
    if plan is None:
        if stats is not None:
            stats.count_fallback(reason, len(tapes))
        return None
    chunk = max(1, limit // plan.lane_elements)
    results: list[dict[int, list[int]] | None] = []
    for start in range(0, len(tapes), chunk):
        lanes = min(chunk, len(tapes) - start)
        executor = BatchLevelPlan(plan, lanes, backend=backend)
        results.extend(executor.execute(check))
    if stats is not None:
        for entry in results:
            if entry is None:
                stats.count_fallback("overflow")
            else:
                stats.hits += 1
    return results
