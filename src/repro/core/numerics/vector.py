"""The vectorized numeric kernel: NumPy over object-dtype big-int arrays.

Count vectors in Algorithm 1 hold *model counts*, which overflow any
fixed-width integer on realistic provenance (``2^n_facts`` scale), so
plain ``int64`` arrays are off the table.  Object-dtype arrays keep
Python's unbounded ints as elements while still letting NumPy drive
the convolution and accumulation loops from C — the win is in loop
dispatch, not machine arithmetic, so it only pays off on wide vectors.
Short vectors (the common case for per-gate counts on small lineages)
are routed to the schoolbook reference loops under a crossover
threshold.

NumPy is an *optional* dependency: this module imports lazily and the
registry (:func:`~repro.core.numerics.base.get_kernel`) falls back to
the reference kernel when it is missing, so nothing in the library
hard-requires it.
"""

from __future__ import annotations

from typing import Sequence

from .base import Kernel, binomial_row, register_kernel
from .exact import PythonKernel

try:  # pragma: no cover - exercised via HAS_NUMPY in both CI tiers
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAS_NUMPY = _np is not None

#: Below this operand width the schoolbook loops beat array round trips.
_VECTOR_THRESHOLD = 16

_reference = PythonKernel()


class NumpyKernel(Kernel):
    """Vectorized exact backend (object dtype keeps ints unbounded)."""

    name = "numpy"

    def poly_mul(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        if min(len(a), len(b)) < _VECTOR_THRESHOLD:
            return _reference.poly_mul(a, b)
        product = _np.convolve(
            _np.array(a, dtype=object), _np.array(b, dtype=object)
        )
        return product.tolist()

    def poly_add(
        self, acc: list[int] | None, poly: Sequence[int]
    ) -> list[int]:
        if acc is None or len(poly) < _VECTOR_THRESHOLD:
            return super().poly_add(acc, poly)
        if len(acc) < len(poly):
            acc.extend([0] * (len(poly) - len(acc)))
        head = _np.array(acc[: len(poly)], dtype=object)
        head += _np.array(poly, dtype=object)
        acc[: len(poly)] = head.tolist()
        return acc

    def or_accumulate(
        self,
        nvars: int,
        child_vals: Sequence[Sequence[int]],
        gaps: Sequence[int],
    ) -> list[int]:
        if nvars < _VECTOR_THRESHOLD:
            return _reference.or_accumulate(nvars, child_vals, gaps)
        acc = _np.zeros(nvars + 1, dtype=object)
        for vals, gap in zip(child_vals, gaps):
            if gap:
                completed = _np.convolve(
                    _np.array(vals, dtype=object),
                    _np.array(binomial_row(gap), dtype=object),
                )
            else:
                completed = _np.array(vals, dtype=object)
            acc[: len(completed)] += completed
        return acc.tolist()


register_kernel(NumpyKernel)
