"""The numeric-kernel seam of the exact Shapley engine.

Everything Algorithm 1 does after knowledge compilation is arithmetic
over size-indexed count vectors: polynomial multiplication (AND gates),
shifted additions (OR gates), binomial completion over free variables
(smoothing gaps and facts outside the circuit), and the Equation-3
combination of conditioned counts into a Shapley value.  A
:class:`Kernel` bundles those primitives behind one interface so the
traversal code (:mod:`repro.core.numerics.tape`,
:mod:`repro.circuits.dnnf`, :mod:`repro.core.shapley`) is backend
agnostic:

* ``"python"`` — the exact big-int reference implementation
  (:mod:`~repro.core.numerics.exact`), always available;
* ``"numpy"`` — a vectorized backend over object-dtype big-int arrays
  (:mod:`~repro.core.numerics.vector`), used when NumPy is importable
  and falling back to the reference kernel otherwise;
* ``"int64"`` — the machine-width backend
  (:mod:`~repro.core.numerics.fixed`): native-dtype arrays behind
  per-call overflow guards, delegating any call it cannot prove safe
  to the object/python kernels.  Also the key that unlocks the
  level-scheduled tape fast path of the derivative pass.

``"auto"`` resolves down the ladder int64 → numpy → python, picking
the fastest backend the installed dependencies support.

All kernels are *exact*: count vectors are Python ints of unbounded
precision and every backend must return byte-identical
:class:`~fractions.Fraction` values (asserted by the parity suite).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from functools import lru_cache
from typing import ClassVar, Sequence


@lru_cache(maxsize=256)
def binomial_row(n: int) -> tuple[int, ...]:
    """``[C(n, 0), ..., C(n, n)]`` — Pascal row, cached across calls."""
    if n < 0:
        raise ValueError("binomial_row needs n >= 0")
    row = [1] * (n + 1)
    for k in range(1, n + 1):
        row[k] = row[k - 1] * (n - k + 1) // k
    return tuple(row)


@lru_cache(maxsize=128)
def _coefficients(n: int) -> tuple[Fraction, ...]:
    """Cached permutation weights ``k!(n-k-1)!/n!`` for ``k = 0..n-1``.

    Computed by the incremental recurrence ``w[k] = w[k-1] * k/(n-k)``
    from ``w[0] = 1/n`` instead of three factorials per ``k``; one
    batch's answers (which share ``n`` whenever they share a player
    count) therefore pay the product chain once.

    The cache is deliberately small: each entry holds ``n`` Fractions
    whose numerators/denominators grow with ``n!``, so an effectively
    unbounded cache in a long-lived coordinator process is a slow leak.
    128 distinct player counts cover any realistic working set;
    :func:`coefficients_cache_info` exposes the hit rate and size so
    ``session.stats`` can prove it.
    """
    if n <= 0:
        return ()
    weights = [Fraction(1, n)]
    for k in range(1, n):
        weights.append(weights[-1] * Fraction(k, n - k))
    return tuple(weights)


def shapley_coefficients(n: int) -> list[Fraction]:
    """The permutation weights ``k!(n-k-1)!/n!`` for ``k = 0..n-1``."""
    return list(_coefficients(n))


def coefficients_cache_info() -> dict[str, int]:
    """Hit/size counters of the bounded Equation-3 weight caches
    (merged into ``ExplainSession.stats``).

    Sums the Fraction-coefficient cache (``shapley_coefficients``) and
    the integer-weight cache the kernels' :meth:`Kernel.equation3`
    combination runs on — two representations of the same per-``n``
    permutation weights, both bounded at 128 player counts.
    """
    fraction_info = _coefficients.cache_info()
    integer_info = _integer_weights.cache_info()
    return {
        "shapley_coefficients_cache_hits":
            fraction_info.hits + integer_info.hits,
        "shapley_coefficients_cache_misses":
            fraction_info.misses + integer_info.misses,
        "shapley_coefficients_cache_size":
            fraction_info.currsize + integer_info.currsize,
        "shapley_coefficients_cache_maxsize":
            fraction_info.maxsize + integer_info.maxsize,
    }


@lru_cache(maxsize=128)
def _integer_weights(n: int) -> tuple[tuple[int, ...], int]:
    """``([k!(n-k-1)! for k = 0..n-1], n!)`` — the Equation-3 weights
    over their common denominator.

    Summing ``weight[k] * diff[k]`` in exact integer arithmetic and
    normalizing *once* replaces ``n`` Fraction additions (each a gcd)
    per fact with one, which is where the combination stage's time
    went.  ``Fraction(total, n!)`` canonicalizes to exactly the value
    the termwise Fraction sum produces.
    """
    if n <= 0:
        return (), 1
    weights = [1] * n  # w[k] = k! (n-k-1)!
    acc = 1
    for k in range(1, n):
        acc *= k
        weights[k] *= acc           # k!
        weights[n - 1 - k] *= acc   # (n-k-1)! at index n-1-k
    return tuple(weights), acc * n  # acc holds (n-1)! after the loop


class Kernel(ABC):
    """Exact numeric primitives of the size-generating-polynomial pass.

    Count vectors are plain Python lists of ints (``counts[k]`` =
    number of objects of size ``k``); kernels may use any internal
    representation but take and return lists so backends interoperate.
    Kernels must be stateless and thread-safe: one shared instance per
    name is handed out by :func:`get_kernel`.
    """

    name: ClassVar[str]

    @abstractmethod
    def poly_mul(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Polynomial (convolution) product of two count vectors."""

    def poly_add(
        self, acc: list[int] | None, poly: Sequence[int]
    ) -> list[int]:
        """``acc + poly`` elementwise, extending ``acc`` as needed.

        ``acc is None`` starts a fresh accumulator.  The returned list
        may alias ``acc`` (in-place accumulation is allowed).
        """
        if acc is None:
            return list(poly)
        if len(acc) < len(poly):
            acc.extend([0] * (len(poly) - len(acc)))
        for i, p in enumerate(poly):
            if p:
                acc[i] += p
        return acc

    def complete(self, counts: Sequence[int], extra: int) -> list[int]:
        """Binomial completion over ``extra`` additional free variables:
        ``out[k] = sum_i counts[i] * C(extra, k - i)`` (line 1 of
        Algorithm 1, realized as a convolution with a Pascal row)."""
        if extra < 0:
            raise ValueError("extra must be non-negative")
        if extra == 0:
            return list(counts)
        return self.poly_mul(counts, binomial_row(extra))

    def or_accumulate(
        self,
        nvars: int,
        child_vals: Sequence[Sequence[int]],
        gaps: Sequence[int],
    ) -> list[int]:
        """Deterministic-OR combination without smoothing.

        ``child_vals[i]`` counts the *i*-th child's models over its own
        variable set; ``gaps[i]`` is the number of gate variables the
        child does not mention.  Each child contributes its counts
        completed over its gap (the binomial factors a smoothed circuit
        would realize as explicit ``(x v -x)`` padding gates); the
        result has length ``nvars + 1``.
        """
        acc = [0] * (nvars + 1)
        for vals, gap in zip(child_vals, gaps):
            completed = vals if gap == 0 else self.complete(vals, gap)
            for k, count in enumerate(completed):
                if count:
                    acc[k] += count
        return acc

    def equation3(
        self,
        counts_pos: Sequence[int],
        counts_neg: Sequence[int] | None,
        n: int,
    ) -> Fraction:
        """Combine conditioned counts into a Shapley value (Equation 3):
        ``sum_k k!(n-k-1)!/n! * (counts_pos[k] - counts_neg[k])``.

        This is the *single* implementation both
        :func:`~repro.core.shapley.shapley_from_counts` and the
        derivative passes delegate to.  ``counts_neg=None`` means
        ``counts_pos`` is already the difference vector.  Bounds are
        normalized here, once: vectors shorter than ``n`` are
        zero-padded, entries at ``k >= n`` (which a caller could only
        produce by over-completing) are ignored.

        The sum runs over the coefficients' common denominator ``n!``
        (integer weights ``k!(n-k-1)!``), paying one Fraction
        normalization per call instead of one gcd per term; the
        canonical result is identical to the termwise Fraction sum.
        """
        weights, denominator = _integer_weights(n)
        total = 0
        if counts_neg is None:
            for k in range(min(n, len(counts_pos))):
                diff = counts_pos[k]
                if diff:
                    total += weights[k] * diff
        else:
            for k in range(min(n, max(len(counts_pos), len(counts_neg)))):
                pos = counts_pos[k] if k < len(counts_pos) else 0
                neg = counts_neg[k] if k < len(counts_neg) else 0
                if pos != neg:
                    total += weights[k] * (pos - neg)
        if isinstance(total, int):
            return Fraction(total, denominator)
        return total / denominator  # exact: non-int count elements

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


#: Registered kernel classes by name (aliases included).
_REGISTRY: dict[str, type[Kernel]] = {}
#: Shared instances, created lazily.
_INSTANCES: dict[str, Kernel] = {}


def register_kernel(cls: type[Kernel], aliases: Sequence[str] = ()) -> type[Kernel]:
    """Register a :class:`Kernel` subclass under its ``name`` (and any
    aliases).  Usable as a plain call; returns the class."""
    for key in (cls.name, *aliases):
        _REGISTRY[key] = cls
    return cls


def available_kernels() -> tuple[str, ...]:
    """Primary names of every registered kernel, reference first."""
    seen: list[str] = []
    for cls in _REGISTRY.values():
        if cls.name not in seen:
            seen.append(cls.name)
    return tuple(seen)


#: Registered backends that require NumPy; requested without it they
#: fall back to the reference kernel (or raise under ``strict``).
#: ``torch`` is listed too: its diff extraction and sentinels run on
#: NumPy arrays, so it needs both optional dependencies.
_NEEDS_NUMPY = ("numpy", "int64", "torch")


def get_kernel(name: str | None = None, strict: bool = False) -> Kernel:
    """The shared kernel instance registered under ``name``.

    ``None`` resolves to the reference backend; ``"auto"`` walks the
    ladder int64 → numpy → python, resolving to the machine-width
    kernel when NumPy is importable and the reference kernel otherwise.
    An *unavailable* backend (``"numpy"`` / ``"int64"`` without NumPy
    installed) falls back to the reference kernel unless ``strict`` is
    true — selection is a performance knob, never a correctness switch,
    so a missing optional dependency must not fail a computation.
    Unknown names always raise.
    """
    from .vector import HAS_NUMPY  # late: avoid import cycle at startup

    if name is None:
        name = "python"
    elif name == "auto":
        name = "int64" if HAS_NUMPY else "python"
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown numeric kernel {name!r}; "
            f"choose from {sorted(set(_REGISTRY))}"
        )
    if cls.name in _NEEDS_NUMPY and not HAS_NUMPY:
        if strict:
            raise ValueError(
                f"numeric kernel {cls.name!r} is unavailable "
                "(NumPy not installed)"
            )
        return get_kernel("python")
    if cls.name == "torch":
        from .torch_backend import HAS_TORCH  # late: optional dependency

        if not HAS_TORCH:
            if strict:
                raise ValueError(
                    "numeric kernel 'torch' is unavailable "
                    "(torch not installed)"
                )
            # Same contract as NumPy: resolve down the ladder rather
            # than fail — torch → int64 → python.
            return get_kernel("auto")
    instance = _INSTANCES.get(cls.name)
    if instance is None:
        instance = _INSTANCES[cls.name] = cls()
    return instance
