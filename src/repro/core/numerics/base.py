"""The numeric-kernel seam of the exact Shapley engine.

Everything Algorithm 1 does after knowledge compilation is arithmetic
over size-indexed count vectors: polynomial multiplication (AND gates),
shifted additions (OR gates), binomial completion over free variables
(smoothing gaps and facts outside the circuit), and the Equation-3
combination of conditioned counts into a Shapley value.  A
:class:`Kernel` bundles those primitives behind one interface so the
traversal code (:mod:`repro.core.numerics.tape`,
:mod:`repro.circuits.dnnf`, :mod:`repro.core.shapley`) is backend
agnostic:

* ``"python"`` — the exact big-int reference implementation
  (:mod:`~repro.core.numerics.exact`), always available;
* ``"numpy"`` — a vectorized backend over object-dtype big-int arrays
  (:mod:`~repro.core.numerics.vector`), used when NumPy is importable
  and falling back to the reference kernel otherwise.

All kernels are *exact*: count vectors are Python ints of unbounded
precision and every backend must return byte-identical
:class:`~fractions.Fraction` values (asserted by the parity suite).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from functools import lru_cache
from typing import ClassVar, Sequence


@lru_cache(maxsize=256)
def binomial_row(n: int) -> tuple[int, ...]:
    """``[C(n, 0), ..., C(n, n)]`` — Pascal row, cached across calls."""
    if n < 0:
        raise ValueError("binomial_row needs n >= 0")
    row = [1] * (n + 1)
    for k in range(1, n + 1):
        row[k] = row[k - 1] * (n - k + 1) // k
    return tuple(row)


@lru_cache(maxsize=1024)
def _coefficients(n: int) -> tuple[Fraction, ...]:
    """Cached permutation weights ``k!(n-k-1)!/n!`` for ``k = 0..n-1``.

    Computed by the incremental recurrence ``w[k] = w[k-1] * k/(n-k)``
    from ``w[0] = 1/n`` instead of three factorials per ``k``; one
    batch's answers (which share ``n`` whenever they share a player
    count) therefore pay the product chain once.
    """
    if n <= 0:
        return ()
    weights = [Fraction(1, n)]
    for k in range(1, n):
        weights.append(weights[-1] * Fraction(k, n - k))
    return tuple(weights)


def shapley_coefficients(n: int) -> list[Fraction]:
    """The permutation weights ``k!(n-k-1)!/n!`` for ``k = 0..n-1``."""
    return list(_coefficients(n))


class Kernel(ABC):
    """Exact numeric primitives of the size-generating-polynomial pass.

    Count vectors are plain Python lists of ints (``counts[k]`` =
    number of objects of size ``k``); kernels may use any internal
    representation but take and return lists so backends interoperate.
    Kernels must be stateless and thread-safe: one shared instance per
    name is handed out by :func:`get_kernel`.
    """

    name: ClassVar[str]

    @abstractmethod
    def poly_mul(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Polynomial (convolution) product of two count vectors."""

    def poly_add(
        self, acc: list[int] | None, poly: Sequence[int]
    ) -> list[int]:
        """``acc + poly`` elementwise, extending ``acc`` as needed.

        ``acc is None`` starts a fresh accumulator.  The returned list
        may alias ``acc`` (in-place accumulation is allowed).
        """
        if acc is None:
            return list(poly)
        if len(acc) < len(poly):
            acc.extend([0] * (len(poly) - len(acc)))
        for i, p in enumerate(poly):
            if p:
                acc[i] += p
        return acc

    def complete(self, counts: Sequence[int], extra: int) -> list[int]:
        """Binomial completion over ``extra`` additional free variables:
        ``out[k] = sum_i counts[i] * C(extra, k - i)`` (line 1 of
        Algorithm 1, realized as a convolution with a Pascal row)."""
        if extra < 0:
            raise ValueError("extra must be non-negative")
        if extra == 0:
            return list(counts)
        return self.poly_mul(counts, binomial_row(extra))

    def or_accumulate(
        self,
        nvars: int,
        child_vals: Sequence[Sequence[int]],
        gaps: Sequence[int],
    ) -> list[int]:
        """Deterministic-OR combination without smoothing.

        ``child_vals[i]`` counts the *i*-th child's models over its own
        variable set; ``gaps[i]`` is the number of gate variables the
        child does not mention.  Each child contributes its counts
        completed over its gap (the binomial factors a smoothed circuit
        would realize as explicit ``(x v -x)`` padding gates); the
        result has length ``nvars + 1``.
        """
        acc = [0] * (nvars + 1)
        for vals, gap in zip(child_vals, gaps):
            completed = vals if gap == 0 else self.complete(vals, gap)
            for k, count in enumerate(completed):
                if count:
                    acc[k] += count
        return acc

    def equation3(
        self,
        counts_pos: Sequence[int],
        counts_neg: Sequence[int] | None,
        n: int,
    ) -> Fraction:
        """Combine conditioned counts into a Shapley value (Equation 3):
        ``sum_k k!(n-k-1)!/n! * (counts_pos[k] - counts_neg[k])``.

        This is the *single* implementation both
        :func:`~repro.core.shapley.shapley_from_counts` and the
        derivative passes delegate to.  ``counts_neg=None`` means
        ``counts_pos`` is already the difference vector.  Bounds are
        normalized here, once: vectors shorter than ``n`` are
        zero-padded, entries at ``k >= n`` (which a caller could only
        produce by over-completing) are ignored.
        """
        coefficients = _coefficients(n)
        total = Fraction(0)
        if counts_neg is None:
            for k in range(min(n, len(counts_pos))):
                diff = counts_pos[k]
                if diff:
                    total += coefficients[k] * diff
            return total
        for k in range(min(n, max(len(counts_pos), len(counts_neg)))):
            pos = counts_pos[k] if k < len(counts_pos) else 0
            neg = counts_neg[k] if k < len(counts_neg) else 0
            if pos != neg:
                total += coefficients[k] * (pos - neg)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


#: Registered kernel classes by name (aliases included).
_REGISTRY: dict[str, type[Kernel]] = {}
#: Shared instances, created lazily.
_INSTANCES: dict[str, Kernel] = {}


def register_kernel(cls: type[Kernel], aliases: Sequence[str] = ()):
    """Register a :class:`Kernel` subclass under its ``name`` (and any
    aliases).  Usable as a plain call; returns the class."""
    for key in (cls.name, *aliases):
        _REGISTRY[key] = cls
    return cls


def available_kernels() -> tuple[str, ...]:
    """Primary names of every registered kernel, reference first."""
    seen: list[str] = []
    for cls in _REGISTRY.values():
        if cls.name not in seen:
            seen.append(cls.name)
    return tuple(seen)


def get_kernel(name: str | None = None, strict: bool = False) -> Kernel:
    """The shared kernel instance registered under ``name``.

    ``None`` resolves to the reference backend; ``"auto"`` picks NumPy
    when importable and the reference kernel otherwise.  An
    *unavailable* backend (``"numpy"`` without NumPy installed) falls
    back to the reference kernel unless ``strict`` is true — selection
    is a performance knob, never a correctness switch, so a missing
    optional dependency must not fail a computation.  Unknown names
    always raise.
    """
    from .vector import HAS_NUMPY  # late: avoid import cycle at startup

    if name is None:
        name = "python"
    elif name == "auto":
        name = "numpy" if HAS_NUMPY else "python"
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown numeric kernel {name!r}; "
            f"choose from {sorted(set(_REGISTRY))}"
        )
    if name == "numpy" and not HAS_NUMPY:
        if strict:
            raise ValueError(
                "numeric kernel 'numpy' is unavailable (NumPy not installed)"
            )
        return get_kernel("python")
    instance = _INSTANCES.get(cls.name)
    if instance is None:
        instance = _INSTANCES[cls.name] = cls()
    return instance
