"""Kernel SHAP adapted to database provenance (Section 6.2).

Kernel SHAP (Lundberg & Lee, 2017) approximates SHAP values by sampling
coalitions, evaluating the model on each, and fitting a weighted linear
model whose coefficients are the attributions.  The paper adapts it to
facts as follows: the "model" is the endogenous lineage ``h``, the
instance of interest is the all-ones vector (all facts present) and the
background is a single all-zeros example (no facts) — so the estimated
conditional expectation ``h_e(S)`` is just ``h`` applied to the
coalition ``S``.

The regression enforces the two standard constraints
``g(empty) = h(empty)`` and ``g(full) = h(full)`` by eliminating the
intercept and one coefficient, exactly like the reference
implementation of the SHAP library.
"""

from __future__ import annotations

import random
from math import comb
from typing import Hashable, Iterable

try:  # NumPy is optional: the regression falls back to pure Python.
    import numpy as np
except ImportError:  # pragma: no cover - exercised in the no-NumPy CI tier
    np = None

from ..circuits.circuit import Circuit


def kernel_shap_values(
    circuit: Circuit,
    endogenous_facts: Iterable[Hashable],
    samples: int | None = None,
    samples_per_fact: int | None = None,
    rng: random.Random | None = None,
) -> dict[Hashable, float]:
    """Approximate Shapley values with Kernel SHAP.

    ``samples`` is the total coalition budget ``m`` (the paper sweeps
    ``m in {10n, ..., 50n}``); ``samples_per_fact`` expresses the same
    as ``m / n``.  Returns float attributions for every fact.
    """
    facts = list(endogenous_facts)
    n = len(facts)
    if rng is None:
        # REP001: a deterministic default keeps repeated runs
        # comparable; callers wanting fresh draws pass their own rng.
        rng = random.Random(0)
    if (samples is None) == (samples_per_fact is None):
        raise ValueError("specify exactly one of samples / samples_per_fact")
    if samples is None:
        samples = samples_per_fact * n
    if samples <= 0:
        raise ValueError("the sampling budget must be positive")

    base = 1 if circuit.evaluate(frozenset()) else 0
    full = 1 if circuit.evaluate(set(facts)) else 0
    delta = full - base
    if n == 0:
        return {}
    if n == 1:
        return {facts[0]: float(delta)}

    # Kernel weights over coalition sizes 1..n-1 (empty/full handled by
    # the constraints).  Plain floats: both regression backends (and
    # the sampler) consume the same values, so seeded runs agree.
    size_weights = [(n - 1) / (s * (n - s)) for s in range(1, n)]
    total_weight = sum(size_weights)
    size_probs = [w / total_weight for w in size_weights]

    # Sample coalitions, then deduplicate: each distinct mask enters the
    # regression once with its exact kernel weight.  (This mirrors the
    # reference implementation, where repeated masks accumulate weight;
    # with the exact kernel weight per distinct mask the regression is
    # exact whenever the budget effectively enumerates the coalitions.)
    sizes = rng.choices(range(1, n), weights=size_probs, k=samples)
    positions = list(range(n))
    seen: dict[tuple[int, ...], None] = {}
    for size in sizes:
        chosen = tuple(sorted(rng.sample(positions, size)))
        seen.setdefault(chosen, None)
    unique = list(seen)
    weights = [
        size_weights[len(chosen) - 1] / comb(n, len(chosen))
        for chosen in unique
    ]

    outputs = _evaluate_coalitions(circuit, facts, unique)
    if np is not None:
        solution = _lstsq_numpy(unique, outputs, weights, n, base, delta)
    else:
        solution = _lstsq_fallback(unique, outputs, weights, n, base, delta)
    phi = list(solution)
    phi.append(delta - sum(phi))
    return {fact: float(phi[i]) for i, fact in enumerate(facts)}


def _lstsq_numpy(
    unique: list[tuple[int, ...]],
    outputs: list[int],
    weights: list[float],
    n: int,
    base: int,
    delta: int,
) -> list[float]:
    """The vectorized constrained regression (NumPy available).

    Enforces ``sum(phi) = delta`` by eliminating the last coefficient:
    ``y - z_last * delta = sum_{j<n-1} phi_j (z_j - z_last)``.
    """
    masks = np.zeros((len(unique), n), dtype=np.int8)
    for row, chosen in enumerate(unique):
        masks[row, list(chosen)] = 1
    y = np.array(outputs, dtype=float) - base
    z = masks.astype(float)
    z_last = z[:, -1]
    design = z[:, :-1] - z_last[:, None]
    target = y - z_last * delta
    sqrt_w = np.sqrt(np.array(weights, dtype=float))
    lhs = design * sqrt_w[:, None]
    rhs = target * sqrt_w
    solution, *_ = np.linalg.lstsq(lhs, rhs, rcond=None)
    return [float(value) for value in solution]


def _lstsq_fallback(
    unique: list[tuple[int, ...]],
    outputs: list[int],
    weights: list[float],
    n: int,
    base: int,
    delta: int,
) -> list[float]:
    """Pure-Python weighted least squares over the normal equations.

    Same constrained design as :func:`_lstsq_numpy`; Gaussian
    elimination with partial pivoting stands in for the SVD solver
    (rank-deficient systems pin unconstrained coefficients at zero
    instead of minimizing their norm — an acceptable difference for an
    approximation baseline, and only reachable without NumPy).
    """
    m = n - 1
    ata = [[0.0] * m for _ in range(m)]
    aty = [0.0] * m
    for chosen, output, weight in zip(unique, outputs, weights):
        members = set(chosen)
        z_last = 1.0 if (n - 1) in members else 0.0
        row = [
            (1.0 if j in members else 0.0) - z_last for j in range(m)
        ]
        target = (output - base) - z_last * delta
        for i in range(m):
            r_i = row[i]
            if r_i:
                aty[i] += weight * r_i * target
                w_ri = weight * r_i
                for j in range(m):
                    if row[j]:
                        ata[i][j] += w_ri * row[j]
    return _solve_normal_equations(ata, aty)


def _solve_normal_equations(ata: list[list[float]], aty: list[float]) -> list[float]:
    """Solve ``ata @ x = aty`` by Gaussian elimination with partial
    pivoting; near-zero pivot columns yield zero coefficients."""
    m = len(aty)
    rows = [ata[i][:] + [aty[i]] for i in range(m)]
    scale = max((max(map(abs, row[:-1]), default=0.0) for row in rows),
                default=0.0)
    tolerance = 1e-12 * max(scale, 1.0)
    pivots: list[tuple[int, int]] = []
    rank = 0
    for col in range(m):
        pivot = max(range(rank, m), key=lambda r: abs(rows[r][col]))
        if abs(rows[pivot][col]) <= tolerance:
            continue
        rows[rank], rows[pivot] = rows[pivot], rows[rank]
        head = rows[rank][col]
        for r in range(rank + 1, m):
            factor = rows[r][col] / head
            if factor:
                for c in range(col, m + 1):
                    rows[r][c] -= factor * rows[rank][c]
        pivots.append((rank, col))
        rank += 1
    x = [0.0] * m
    for r, col in reversed(pivots):
        residual = rows[r][m] - sum(
            rows[r][c] * x[c] for c in range(col + 1, m) if x[c]
        )
        x[col] = residual / rows[r][col]
    return x


def _evaluate_coalitions(
    circuit: Circuit, facts: list[Hashable], coalitions: list[tuple[int, ...]]
) -> list[int]:
    """Evaluate the circuit on every coalition (a tuple of fact
    positions) using bit-parallel chunks of 256 assignments."""
    outputs: list[int] = []
    chunk = 256
    for start in range(0, len(coalitions), chunk):
        batch = coalitions[start : start + chunk]
        width = len(batch)
        bits_of: dict[int, int] = {}
        for offset, chosen in enumerate(batch):
            mask = 1 << offset
            for index in chosen:
                bits_of[index] = bits_of.get(index, 0) | mask
        assignments = {facts[i]: bits for i, bits in bits_of.items()}
        result = circuit.evaluate_batch(assignments, width)
        outputs.extend(result >> offset & 1 for offset in range(width))
    return outputs
