"""Kernel SHAP adapted to database provenance (Section 6.2).

Kernel SHAP (Lundberg & Lee, 2017) approximates SHAP values by sampling
coalitions, evaluating the model on each, and fitting a weighted linear
model whose coefficients are the attributions.  The paper adapts it to
facts as follows: the "model" is the endogenous lineage ``h``, the
instance of interest is the all-ones vector (all facts present) and the
background is a single all-zeros example (no facts) — so the estimated
conditional expectation ``h_e(S)`` is just ``h`` applied to the
coalition ``S``.

The regression enforces the two standard constraints
``g(empty) = h(empty)`` and ``g(full) = h(full)`` by eliminating the
intercept and one coefficient, exactly like the reference
implementation of the SHAP library.
"""

from __future__ import annotations

import random
from math import comb
from typing import Hashable, Iterable

import numpy as np

from ..circuits.circuit import Circuit


def kernel_shap_values(
    circuit: Circuit,
    endogenous_facts: Iterable[Hashable],
    samples: int | None = None,
    samples_per_fact: int | None = None,
    rng: random.Random | None = None,
) -> dict[Hashable, float]:
    """Approximate Shapley values with Kernel SHAP.

    ``samples`` is the total coalition budget ``m`` (the paper sweeps
    ``m in {10n, ..., 50n}``); ``samples_per_fact`` expresses the same
    as ``m / n``.  Returns float attributions for every fact.
    """
    facts = list(endogenous_facts)
    n = len(facts)
    if rng is None:
        rng = random.Random()
    if (samples is None) == (samples_per_fact is None):
        raise ValueError("specify exactly one of samples / samples_per_fact")
    if samples is None:
        samples = samples_per_fact * n
    if samples <= 0:
        raise ValueError("the sampling budget must be positive")

    base = 1 if circuit.evaluate(frozenset()) else 0
    full = 1 if circuit.evaluate(set(facts)) else 0
    delta = full - base
    if n == 0:
        return {}
    if n == 1:
        return {facts[0]: float(delta)}

    # Kernel weights over coalition sizes 1..n-1 (empty/full handled by
    # the constraints).
    size_weights = np.array(
        [(n - 1) / (s * (n - s)) for s in range(1, n)], dtype=float
    )
    size_probs = size_weights / size_weights.sum()

    # Sample coalitions, then deduplicate: each distinct mask enters the
    # regression once with its exact kernel weight.  (This mirrors the
    # reference implementation, where repeated masks accumulate weight;
    # with the exact kernel weight per distinct mask the regression is
    # exact whenever the budget effectively enumerates the coalitions.)
    sizes = rng.choices(range(1, n), weights=size_probs.tolist(), k=samples)
    positions = list(range(n))
    seen: dict[tuple[int, ...], None] = {}
    for size in sizes:
        chosen = tuple(sorted(rng.sample(positions, size)))
        seen.setdefault(chosen, None)
    unique = list(seen)
    samples = len(unique)
    masks = np.zeros((samples, n), dtype=np.int8)
    weights = np.empty(samples, dtype=float)
    for row, chosen in enumerate(unique):
        masks[row, list(chosen)] = 1
        size = len(chosen)
        weights[row] = size_weights[size - 1] / comb(n, size)

    outputs = _evaluate_masks(circuit, facts, masks)
    y = outputs.astype(float) - base

    # Enforce sum(phi) = delta by eliminating the last coefficient:
    # y - z_last * delta = sum_{j<n-1} phi_j (z_j - z_last).
    z = masks.astype(float)
    z_last = z[:, -1]
    design = z[:, :-1] - z_last[:, None]
    target = y - z_last * delta
    sqrt_w = np.sqrt(weights)
    lhs = design * sqrt_w[:, None]
    rhs = target * sqrt_w
    solution, *_ = np.linalg.lstsq(lhs, rhs, rcond=None)
    phi = np.empty(n, dtype=float)
    phi[:-1] = solution
    phi[-1] = delta - solution.sum()
    return {fact: float(phi[i]) for i, fact in enumerate(facts)}


def _evaluate_masks(
    circuit: Circuit, facts: list[Hashable], masks: np.ndarray
) -> np.ndarray:
    """Evaluate the circuit on every row of a 0/1 coalition matrix using
    bit-parallel chunks of 256 assignments."""
    samples = masks.shape[0]
    outputs = np.zeros(samples, dtype=np.int8)
    chunk = 256
    for start in range(0, samples, chunk):
        stop = min(start + chunk, samples)
        width = stop - start
        assignments = {}
        for index, fact in enumerate(facts):
            bits = 0
            column = masks[start:stop, index]
            for offset in range(width):
                if column[offset]:
                    bits |= 1 << offset
            if bits:
                assignments[fact] = bits
        result = circuit.evaluate_batch(assignments, width)
        for offset in range(width):
            outputs[start + offset] = result >> offset & 1
    return outputs
