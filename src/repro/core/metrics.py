"""Ranking-quality and error metrics used in the paper's evaluation.

All metrics compare an *estimated* attribution map against the *ground
truth* (exact Shapley values): nDCG (optionally @k), Precision@k, and
the L1/L2 errors of Table 2, plus Kendall's tau as an extra.
"""

from __future__ import annotations

import math
from typing import Hashable, Mapping, Sequence

Values = Mapping[Hashable, object]


def ranking(values: Values) -> list[Hashable]:
    """Keys ordered by decreasing value; ties broken deterministically
    by the key's repr so results are stable across runs."""
    return sorted(values, key=lambda k: (-float(values[k]), repr(k)))


def ndcg(truth: Values, estimate: Values, k: int | None = None) -> float:
    """Normalized discounted cumulative gain of the estimated ranking.

    Gains are the (non-negative part of the) true Shapley values; the
    discount is the standard ``1 / log2(rank + 1)``.  A degenerate
    ground truth with no positive mass yields 1.0 (any order is ideal).
    """
    if set(truth) != set(estimate):
        raise ValueError("truth and estimate must cover the same facts")
    gains = {key: max(float(truth[key]), 0.0) for key in truth}
    predicted_order = ranking(estimate)
    ideal_order = ranking(truth)
    if k is not None:
        predicted_order = predicted_order[:k]
        ideal_order = ideal_order[:k]
    dcg = sum(
        gains[key] / math.log2(rank + 2)
        for rank, key in enumerate(predicted_order)
    )
    ideal = sum(
        gains[key] / math.log2(rank + 2)
        for rank, key in enumerate(ideal_order)
    )
    if ideal == 0.0:
        return 1.0
    return dcg / ideal


def precision_at_k(truth: Values, estimate: Values, k: int) -> float:
    """Fraction of the true top-k facts recovered in the estimated
    top-k (Section 6.2).  ``k`` is capped at the number of facts."""
    if k <= 0:
        raise ValueError("k must be positive")
    if set(truth) != set(estimate):
        raise ValueError("truth and estimate must cover the same facts")
    k = min(k, len(truth))
    if k == 0:
        return 1.0
    top_truth = set(ranking(truth)[:k])
    top_estimate = set(ranking(estimate)[:k])
    return len(top_truth & top_estimate) / k


def l1_error(truth: Values, estimate: Values) -> float:
    """Mean absolute error between estimated and true values."""
    if not truth:
        return 0.0
    return sum(
        abs(float(estimate[key]) - float(truth[key])) for key in truth
    ) / len(truth)


def l2_error(truth: Values, estimate: Values) -> float:
    """Mean squared error between estimated and true values."""
    if not truth:
        return 0.0
    return sum(
        (float(estimate[key]) - float(truth[key])) ** 2 for key in truth
    ) / len(truth)


def kendall_tau(truth: Values, estimate: Values) -> float:
    """Kendall rank correlation between the two orderings (ties counted
    as agreements when tied in both)."""
    keys = list(truth)
    if len(keys) < 2:
        return 1.0
    concordant = 0
    discordant = 0
    for i in range(len(keys)):
        for j in range(i + 1, len(keys)):
            a = float(truth[keys[i]]) - float(truth[keys[j]])
            b = float(estimate[keys[i]]) - float(estimate[keys[j]])
            product = a * b
            if product > 0 or (a == 0 and b == 0):
                concordant += 1
            elif product < 0:
                discordant += 1
    pairs = len(keys) * (len(keys) - 1) // 2
    return (concordant - discordant) / pairs


def summarize(samples: Sequence[float]) -> dict[str, float]:
    """Median/mean summary used by Table 2's "median (mean)" cells."""
    if not samples:
        return {"median": float("nan"), "mean": float("nan")}
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        median = ordered[mid]
    else:
        median = (ordered[mid - 1] + ordered[mid]) / 2
    return {"median": median, "mean": sum(ordered) / len(ordered)}
