"""Exact SHAP-scores of provenance circuits (Section 6.2 / related work).

The paper's Kernel SHAP baseline approximates the *SHAP-score* of
Lundberg & Lee, whose exact computation over deterministic and
decomposable circuits was shown tractable by Arenas et al.  This module
implements that exact computation for Boolean circuits under a fully
factorized (product) feature distribution:

    SHAP(h, e, x) = sum_{S ⊆ X\\{x}} |S|!(|X|-|S|-1)!/|X|! * (h_e(S ∪ {x}) - h_e(S))

with ``h_e(S) = E_{z~pi}[h(z) | z_S = e_S]``.

Connection tested in the suite: with the paper's adaptation (instance
``e`` = all facts present, background = the empty database, i.e.
``pi = 0``), the SHAP-score coincides with the Shapley value of the
fact — which is why Kernel SHAP is a sensible baseline there.

The algorithm mirrors Lemma 4.5's dynamic program with *expectation-
weighted* set sums instead of model counts: for every gate ``g`` and
size ``l`` it computes

    G_l(g) = sum_{S ⊆ Vars(g), |S| = l}  E[h_g(z) | z_S = e_S].

All arithmetic is exact over Fractions and runs on the shared numeric
kernels (:mod:`repro.core.numerics` — the primitives are element-type
agnostic, so the same convolution/completion code serves both int
counts and Fraction expectations).
"""

from __future__ import annotations

from fractions import Fraction
from math import comb
from typing import Hashable, Iterable, Mapping

from ..circuits.circuit import AND, FALSE, NOT, OR, TRUE, VAR, Circuit, CircuitError
from .numerics.base import Kernel, get_kernel
from .shapley import shapley_coefficients


def _resolve_kernel(kernel) -> Kernel:
    if isinstance(kernel, Kernel):
        return kernel
    return get_kernel(kernel)


def expectation_set_sums(
    circuit: Circuit,
    instance: Mapping[Hashable, bool],
    marginals: Mapping[Hashable, Fraction],
    root: int | None = None,
    kernel=None,
) -> tuple[list[Fraction], int]:
    """Compute ``[G_0, ..., G_v]`` over ``Vars(C)`` for a d-D circuit.

    ``instance`` is the explained input ``e``; ``marginals[x]`` is
    ``P(z_x = 1)`` under the product distribution.  Returns the sums and
    the number of variables.
    """
    kernel = _resolve_kernel(kernel)
    if root is None:
        root = circuit.output_gate()
    var_sets = circuit.gate_var_sets(root)
    values: dict[int, list[Fraction]] = {}
    for gate in sorted(var_sets):
        kind = circuit.kind(gate)
        nvars = len(var_sets[gate])
        if kind == VAR:
            label = circuit.label(gate)
            pi = Fraction(marginals.get(label, Fraction(1, 2)))
            e_val = Fraction(1 if instance.get(label, False) else 0)
            values[gate] = [pi, e_val]
        elif kind == TRUE:
            values[gate] = [Fraction(1)]
        elif kind == FALSE:
            values[gate] = [Fraction(0)]
        elif kind == NOT:
            child = circuit.children(gate)[0]
            child_values = values[child]
            values[gate] = [
                comb(nvars, l) - child_values[l] for l in range(nvars + 1)
            ]
        elif kind == OR:
            children = circuit.children(gate)
            values[gate] = kernel.or_accumulate(
                nvars,
                [values[c] for c in children],
                [nvars - len(var_sets[c]) for c in children],
            )
        else:  # AND
            acc = [Fraction(1)]
            for child in circuit.children(gate):
                acc = kernel.poly_mul(acc, values[child])
            if len(acc) != nvars + 1:
                raise CircuitError("AND gate is not decomposable")
            values[gate] = acc
    return values[root], len(var_sets[root])


def _sums_or_constant(circuit: Circuit, instance, marginals, kernel=None):
    root = circuit.output_gate()
    kind = circuit.kind(root)
    if kind == TRUE:
        return [Fraction(1)], 0
    if kind == FALSE:
        return [Fraction(0)], 0
    return expectation_set_sums(circuit, instance, marginals, kernel=kernel)


def shap_score_of_fact(
    circuit: Circuit,
    features: Iterable[Hashable],
    fact: Hashable,
    instance: Mapping[Hashable, bool],
    marginals: Mapping[Hashable, Fraction],
    kernel=None,
) -> Fraction:
    """Exact SHAP-score of one feature for a d-D provenance circuit.

    ``features`` is the full player set ``X`` (facts not in the circuit
    behave as irrelevant features); marginal contributions mix the two
    conditionings of ``fact`` by its marginal probability.
    """
    kernel = _resolve_kernel(kernel)
    players = list(features)
    n = len(players)
    if fact not in set(players):
        raise ValueError(f"{fact!r} is not a feature")
    coefficients = shapley_coefficients(n)

    pi = Fraction(marginals.get(fact, Fraction(1, 2)))
    e_val = bool(instance.get(fact, False))
    on_instance = circuit.condition({fact: e_val})
    on_true = circuit.condition({fact: True})
    on_false = circuit.condition({fact: False})

    g_instance, v_i = _sums_or_constant(on_instance, instance, marginals, kernel)
    g_true, v_t = _sums_or_constant(on_true, instance, marginals, kernel)
    g_false, v_f = _sums_or_constant(on_false, instance, marginals, kernel)

    # Complete each vector over the remaining n-1 features: a feature
    # outside the sub-circuit contributes a free (value-preserving)
    # binomial choice of membership in S.
    g_instance = kernel.complete(g_instance, (n - 1) - v_i)
    g_true = kernel.complete(g_true, (n - 1) - v_t)
    g_false = kernel.complete(g_false, (n - 1) - v_f)

    total = Fraction(0)
    for k in range(n):
        with_fact = g_instance[k]
        without_fact = pi * g_true[k] + (1 - pi) * g_false[k]
        if with_fact != without_fact:
            total += coefficients[k] * (with_fact - without_fact)
    return total


def shap_scores(
    circuit: Circuit,
    features: Iterable[Hashable],
    instance: Mapping[Hashable, bool] | None = None,
    marginals: Mapping[Hashable, Fraction] | None = None,
    kernel=None,
) -> dict[Hashable, Fraction]:
    """Exact SHAP-scores of all features.

    Defaults reproduce the paper's Kernel SHAP setting: ``instance`` is
    all-present and ``marginals`` all-zero (the single all-absent
    background example) — in which case the SHAP-score equals the
    Shapley value of the fact (tested in the suite).
    """
    players = list(features)
    if instance is None:
        instance = {f: True for f in players}
    if marginals is None:
        marginals = {f: Fraction(0) for f in players}
    kernel = _resolve_kernel(kernel)
    present = circuit.condition({}).reachable_vars()
    result: dict[Hashable, Fraction] = {}
    for fact in players:
        if fact not in present:
            result[fact] = Fraction(0)
        else:
            result[fact] = shap_score_of_fact(
                circuit, players, fact, instance, marginals, kernel=kernel
            )
    return result
