"""The end-to-end exact pipeline of the paper's Figure 3.

Database + query + answer tuple  →  lineage circuit (ProvSQL role)
→ endogenous lineage (exogenous facts fixed to 1) → Tseytin CNF
→ knowledge compilation to d-DNNF (c2d role) → auxiliary-variable
elimination (Lemma 4.6) → Algorithm 1 → Shapley value of every fact.

Every stage is timed and sized so the benchmark harness can reproduce
Table 1 and Figure 4, and the whole pipeline accepts a budget whose
exhaustion is reported as a *failure outcome* rather than an exception
(the paper's OOM/timeout events).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Hashable, Mapping

from ..circuits.circuit import Circuit
from ..circuits.cnf import Cnf
from ..circuits.dnnf import eliminate_auxiliary
from ..circuits.tseytin import tseytin_transform
from ..compiler.knowledge import BudgetExceeded, CompilationBudget, compile_cnf
from ..db.algebra import Operator
from ..db.conjunctive import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..db.database import Database, Fact
from ..db.evaluate import LineageResult, lineage
from ..db.sql import plan_sql
from .numerics.fixed import FastpathStats, budget_elements, plan_with_reason
from .shapley import (
    ShapleyTimeout, shapley_all_facts, shapley_all_facts_batched,
)

if TYPE_CHECKING:  # pragma: no cover - engine imports this module
    from ..engine.cache import ArtifactCache, CircuitArtifacts

QueryLike = str | Operator | ConjunctiveQuery | UnionOfConjunctiveQueries


def to_plan(query: QueryLike, database: Database) -> Operator:
    """Normalize a SQL string / conjunctive query / algebra tree into a
    relational-algebra plan."""
    if isinstance(query, str):
        return plan_sql(query, database.schema)
    if isinstance(query, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
        return query.to_algebra(database.schema)
    return query


@dataclass
class ProvenanceStats:
    """Sizes collected along the pipeline (the x-axes of Figure 4)."""

    n_facts: int = 0
    circuit_size: int = 0
    cnf_vars: int = 0
    cnf_clauses: int = 0
    ddnnf_size: int = 0


@dataclass
class ExactOutcome:
    """Result of one exact Shapley computation for one output tuple.

    ``status`` is ``"ok"`` on success, ``"budget"`` if knowledge
    compilation blew its node/time budget (the paper's OOM events) and
    ``"timeout"`` if Algorithm 1 did.
    """

    status: str
    values: dict[Hashable, Fraction] | None
    stats: ProvenanceStats
    timings: dict[str, float] = field(default_factory=dict)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def compile_seconds(self) -> float:
        """Everything before Algorithm 1: Tseytin, knowledge
        compilation, and gate-tape lowering (the ``tape`` stage carries
        the d-DNNF compilation it triggers on cold shapes)."""
        return (
            self.timings.get("tseytin", 0.0)
            + self.timings.get("compile", 0.0)
            + self.timings.get("tape", 0.0)
        )

    @property
    def shapley_seconds(self) -> float:
        return self.timings.get("shapley", 0.0)


def exact_shapley_of_circuit(
    circuit: Circuit,
    endogenous_facts,
    budget: CompilationBudget | None = None,
    method: str = "derivative",
    cache: "ArtifactCache | None" = None,
    numeric_backend: str | None = None,
) -> dict[Hashable, Fraction]:
    """Exact Shapley values of an endogenous-lineage circuit.

    Raises :class:`~repro.compiler.BudgetExceeded` /
    :class:`~repro.core.shapley.ShapleyTimeout` on budget exhaustion;
    use :func:`run_exact` for the non-raising variant.
    """
    outcome = run_exact(
        circuit, endogenous_facts, budget=budget, method=method, cache=cache,
        numeric_backend=numeric_backend,
    )
    if not outcome.ok:
        if outcome.status == "budget":
            raise BudgetExceeded(outcome.error or "budget exceeded")
        raise ShapleyTimeout(outcome.error or "timed out")
    assert outcome.values is not None
    return outcome.values


def _split_compile_timings(
    timings: dict[str, float],
    compile_stats,
    tape_lower_seconds: float,
) -> None:
    """Break the compile/tape stage into its cold-path sub-stages.

    ``component_compile`` is time spent compiling memoizable connected
    components from scratch, ``stitch`` the time importing (memoized or
    freshly built) component d-DNNFs into the parent circuit, and
    ``tape_lower`` the d-DNNF → gate-tape lowering.  All three are zero
    on a fully warm shape, which is exactly the point of the profile.
    """
    timings["component_compile"] = (
        compile_stats.component_seconds if compile_stats is not None else 0.0
    )
    timings["stitch"] = (
        compile_stats.stitch_seconds if compile_stats is not None else 0.0
    )
    timings["tape_lower"] = tape_lower_seconds


def run_exact(
    circuit: Circuit,
    endogenous_facts,
    budget: CompilationBudget | None = None,
    method: str = "derivative",
    cache: "ArtifactCache | None" = None,
    artifacts: "CircuitArtifacts | None" = None,
    numeric_backend: str | None = None,
    compile_jobs: int | None = None,
    fastpath_budget_bytes: int | None = None,
) -> ExactOutcome:
    """Run the knowledge-compilation pipeline on one lineage circuit,
    catching budget events into the outcome.

    With a ``cache`` (an :class:`~repro.engine.cache.ArtifactCache`),
    the Tseytin and compilation stages are served from it: lineages
    isomorphic to an already-compiled one skip knowledge compilation
    entirely and only pay a rename, while Shapley values stay identical
    to the uncached path (the renamed d-DNNF computes the same function
    over the same labels).

    ``artifacts`` may carry a prebuilt
    :class:`~repro.engine.cache.CircuitArtifacts` handle for this very
    circuit; the pipeline then reuses its canonicalization pass instead
    of conditioning and signing the circuit again.  In the default
    ``"derivative"`` mode the handle also serves the shape's compiled
    :class:`~repro.core.numerics.tape.GateTape`, so a warm shape runs
    Algorithm 1 without touching a single circuit gate.

    ``numeric_backend`` names the numeric kernel of the counting passes
    (see :mod:`repro.core.numerics`); every backend returns identical
    exact Fractions.

    ``compile_jobs`` > 1 compiles independent top-level CNF components
    concurrently; stitching stays deterministic, so results are
    byte-identical to the serial compile.

    ``fastpath_budget_bytes`` bounds the machine-width fast path's SoA
    value buffers (default 64 MiB); shapes over budget fall back to the
    interpreted exact pass and are counted as budget fallbacks.
    """
    endo = list(endogenous_facts)
    stats = ProvenanceStats()
    timings: dict[str, float] = {}
    start = time.perf_counter()
    deadline = (
        start + budget.max_seconds
        if budget is not None and budget.max_seconds is not None
        else None
    )

    if artifacts is not None:
        stats.n_facts = len(artifacts.labels)
        stats.circuit_size = artifacts.source_size
        simplified = None
    else:
        simplified = circuit.condition({})
        stats.n_facts = len(simplified.reachable_vars())
        stats.circuit_size = len(simplified)
        if cache is not None:
            artifacts = cache.open(simplified)

    t0 = time.perf_counter()
    cnf = artifacts.cnf() if artifacts is not None else tseytin_transform(simplified)
    timings["tseytin"] = time.perf_counter() - t0
    stats.cnf_vars = cnf.num_vars
    stats.cnf_clauses = cnf.num_clauses

    tape = None
    stage = "compile"
    compile_stats = None
    t0 = time.perf_counter()
    try:
        if artifacts is not None:
            stats_before = artifacts.compile_stats
            lower_before = artifacts.tape_lower_seconds
            if method == "derivative":
                # The tape is the only artifact the derivative pass
                # needs; on a warm shape this is a pure lookup + O(#vars)
                # re-targeting (no d-DNNF rename, no gate traversal).
                # Timed as its own stage: on a warm run this is the
                # entire tape-lower cost (a cold run folds the d-DNNF
                # compilation it triggers into the same stage).
                stage = "tape"
                tape = artifacts.tape(budget=budget, jobs=compile_jobs)
                ddnnf = None
            else:
                ddnnf = artifacts.ddnnf(budget=budget, jobs=compile_jobs)
            # Only attribute sub-stage time this call actually spent
            # (the handle may be warm or shared across answers).
            if artifacts.compile_stats is not stats_before:
                compile_stats = artifacts.compile_stats
            tape_lower = artifacts.tape_lower_seconds - lower_before
        else:
            compiled = compile_cnf(cnf, budget=budget, jobs=compile_jobs)
            ddnnf = eliminate_auxiliary(compiled.circuit, set(cnf.labels.values()))
            compile_stats = compiled.stats
            tape_lower = 0.0
    except BudgetExceeded as exc:
        timings[stage] = time.perf_counter() - t0
        return ExactOutcome("budget", None, stats, timings, str(exc))
    timings[stage] = time.perf_counter() - t0
    _split_compile_timings(timings, compile_stats, tape_lower)
    stats.ddnnf_size = tape.source_gates if tape is not None else len(ddnnf)

    fastpath = FastpathStats()
    t0 = time.perf_counter()
    try:
        values = shapley_all_facts(
            ddnnf, endo, method=method, deadline=deadline,
            kernel=numeric_backend, tape=tape, fastpath_stats=fastpath,
            fastpath_budget_bytes=fastpath_budget_bytes,
        )
    except ShapleyTimeout as exc:
        timings["shapley"] = time.perf_counter() - t0
        return ExactOutcome("timeout", None, stats, timings, str(exc))
    finally:
        recorder = cache if cache is not None else (
            artifacts.cache if artifacts is not None else None)
        if recorder is not None:
            recorder.record_fastpath(fastpath)
    timings["shapley"] = time.perf_counter() - t0
    return ExactOutcome("ok", values, stats, timings)


def _prepare_tape(
    circuit: Circuit,
    budget: CompilationBudget | None,
    cache: "ArtifactCache | None",
    artifacts: "CircuitArtifacts | None",
    compile_jobs: int | None,
    stats: ProvenanceStats,
    timings: dict[str, float],
):
    """The pre-Algorithm-1 stages of one derivative-mode answer:
    artifact acquisition, Tseytin/CNF, and the gate-tape stage — the
    same bookkeeping as :func:`run_exact`, factored out so
    :func:`run_exact_batch` can run them per answer before the shared
    batched sweep.

    Returns ``(tape, failure)``: exactly one is ``None``; ``failure``
    is the budget :class:`ExactOutcome` when compilation blew its
    budget (timings already recorded).
    """
    if artifacts is not None:
        stats.n_facts = len(artifacts.labels)
        stats.circuit_size = artifacts.source_size
        simplified = None
    else:
        simplified = circuit.condition({})
        stats.n_facts = len(simplified.reachable_vars())
        stats.circuit_size = len(simplified)
        if cache is not None:
            artifacts = cache.open(simplified)

    t0 = time.perf_counter()
    cnf = (
        artifacts.cnf() if artifacts is not None
        else tseytin_transform(simplified)
    )
    timings["tseytin"] = time.perf_counter() - t0
    stats.cnf_vars = cnf.num_vars
    stats.cnf_clauses = cnf.num_clauses

    stage = "compile"
    compile_stats = None
    t0 = time.perf_counter()
    try:
        if artifacts is not None:
            stats_before = artifacts.compile_stats
            lower_before = artifacts.tape_lower_seconds
            stage = "tape"
            tape = artifacts.tape(budget=budget, jobs=compile_jobs)
            if artifacts.compile_stats is not stats_before:
                compile_stats = artifacts.compile_stats
            tape_lower = artifacts.tape_lower_seconds - lower_before
        else:
            from .numerics import compile_tape

            compiled = compile_cnf(cnf, budget=budget, jobs=compile_jobs)
            ddnnf = eliminate_auxiliary(
                compiled.circuit, set(cnf.labels.values()))
            compile_stats = compiled.stats
            t1 = time.perf_counter()
            tape = compile_tape(ddnnf.condition({}))
            tape_lower = time.perf_counter() - t1
    except BudgetExceeded as exc:
        timings[stage] = time.perf_counter() - t0
        return None, ExactOutcome("budget", None, stats, timings, str(exc))
    timings[stage] = time.perf_counter() - t0
    _split_compile_timings(timings, compile_stats, tape_lower)
    stats.ddnnf_size = tape.source_gates
    return tape, None


def run_exact_batch(
    circuits,
    endo_lists,
    budget: CompilationBudget | None = None,
    method: str = "derivative",
    cache: "ArtifactCache | None" = None,
    artifacts_list=None,
    numeric_backend: str | None = None,
    compile_jobs: int | None = None,
    fastpath_budget_bytes: int | None = None,
) -> list[ExactOutcome]:
    """Run the exact pipeline over a *same-shape answer group*.

    ``circuits[i]`` / ``endo_lists[i]`` (and optionally
    ``artifacts_list[i]``) describe answer *i*.  In ``"derivative"``
    mode the group's Algorithm-1 sweeps run as one batched machine-width
    pass (:func:`~repro.core.shapley.shapley_all_facts_batched`); per
    answer, compilation failures become individual budget outcomes and
    sentinel-tripped lanes fall back individually to the interpreted
    pass, so every answer's Fractions are identical to a
    :func:`run_exact` loop.  Other modes (and singleton groups) *are*
    that loop.

    Timing attribution: each answer's ``shapley`` stage receives an
    equal share of the group sweep, mirrored as ``batch_exec``, plus a
    ``tier_<float64|int64|crt>`` entry naming the arithmetic tier the
    group's plan executed in (absent when the shape fell back).
    """
    n_answers = len(circuits)
    endo_lists = [list(endo) for endo in endo_lists]
    if artifacts_list is None:
        artifacts_list = [None] * n_answers
    if method != "derivative" or n_answers <= 1:
        return [
            run_exact(
                circuit, endo, budget=budget, method=method, cache=cache,
                artifacts=artifacts, numeric_backend=numeric_backend,
                compile_jobs=compile_jobs,
                fastpath_budget_bytes=fastpath_budget_bytes,
            )
            for circuit, endo, artifacts
            in zip(circuits, endo_lists, artifacts_list)
        ]

    start = time.perf_counter()
    deadline = (
        start + budget.max_seconds
        if budget is not None and budget.max_seconds is not None
        else None
    )
    outcomes: list[ExactOutcome | None] = [None] * n_answers
    prepared: list[tuple[int, object, ProvenanceStats, dict]] = []
    for i in range(n_answers):
        stats = ProvenanceStats()
        timings: dict[str, float] = {}
        tape, failure = _prepare_tape(
            circuits[i], budget, cache, artifacts_list[i], compile_jobs,
            stats, timings,
        )
        if failure is not None:
            outcomes[i] = failure
        else:
            prepared.append((i, tape, stats, timings))
    if not prepared:
        return outcomes

    fastpath = FastpathStats()
    tapes = [entry[1] for entry in prepared]
    group_endo = [endo_lists[entry[0]] for entry in prepared]
    t0 = time.perf_counter()
    try:
        values_list = shapley_all_facts_batched(
            tapes, group_endo, deadline=deadline, kernel=numeric_backend,
            fastpath_stats=fastpath,
            fastpath_budget_bytes=fastpath_budget_bytes,
        )
    except ShapleyTimeout as exc:
        elapsed = time.perf_counter() - t0
        share = elapsed / len(prepared)
        for i, tape, stats, timings in prepared:
            timings["shapley"] = share
            outcomes[i] = ExactOutcome(
                "timeout", None, stats, timings, str(exc))
        values_list = None
    finally:
        recorder = cache
        if recorder is None:
            recorder = next(
                (a.cache for a in artifacts_list
                 if a is not None and a.cache is not None), None)
        if recorder is not None:
            recorder.record_fastpath(fastpath)
            recorder.record_batch(1, len(prepared))
    if values_list is None:
        return outcomes

    elapsed = time.perf_counter() - t0
    share = elapsed / len(prepared)
    # Attribute the group's arithmetic tier (the plan lookup is a pure
    # cache hit here; the sweep above already built or refused it).
    tier = None
    if not tapes[0].is_constant:
        plan, _ = plan_with_reason(
            tapes[0], budget_elements(fastpath_budget_bytes))
        tier = plan.tier_name if plan is not None else None
    for (i, tape, stats, timings), values in zip(prepared, values_list):
        timings["shapley"] = share
        timings["batch_exec"] = share
        if tier is not None:
            timings[f"tier_{tier}"] = share
        outcomes[i] = ExactOutcome("ok", values, stats, timings)
    return outcomes


@dataclass
class TupleExplanation:
    """Exact Shapley explanation of a single query answer."""

    answer: tuple
    outcome: ExactOutcome

    def values(self) -> dict[Hashable, Fraction]:
        if not self.outcome.ok or self.outcome.values is None:
            raise RuntimeError(f"exact computation failed: {self.outcome.status}")
        return self.outcome.values

    def top(self, k: int = 10) -> list[tuple[Hashable, Fraction]]:
        vals = self.values()
        order = sorted(vals.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return order[:k]


class ShapleyExplainer:
    """High-level exact pipeline bound to one database.

    Delegates to the ``"exact"`` engine of the registry
    (:mod:`repro.engine`), so a shared
    :class:`~repro.engine.cache.ArtifactCache` makes repeated lineage
    shapes compile once — across answers, queries, and even other
    explainers holding the same cache.

    Example
    -------
    >>> explainer = ShapleyExplainer(db)
    >>> explanations = explainer.explain("SELECT name FROM ...")
    >>> explanations[("FRANCE",)].top(3)
    """

    def __init__(
        self,
        database: Database,
        budget: CompilationBudget | None = None,
        method: str = "derivative",
        restrict_to_lineage: bool = True,
        cache: "ArtifactCache | None" = None,
    ) -> None:
        self.database = database
        self.budget = budget
        self.method = method
        # When True, Shapley values are computed over the facts actually
        # appearing in the answer's lineage (all other endogenous facts
        # provably have value 0 and are reported as such only on demand).
        self.restrict_to_lineage = restrict_to_lineage
        self.cache = cache

    def _options(self) -> "object":
        from ..engine.base import EngineOptions

        return EngineOptions(
            budget=self.budget, timeout=None,
            mode=self.method, cache=self.cache,
        )

    def lineage(self, query: QueryLike) -> LineageResult:
        """Endogenous lineage of every answer of the query."""
        plan = to_plan(query, self.database)
        return lineage(plan, self.database, endogenous_only=True)

    def explain_answer(
        self, result: LineageResult, answer: tuple
    ) -> TupleExplanation:
        """Exact Shapley values for one answer tuple."""
        from ..engine.registry import get_engine

        circuit = result.lineage_of(answer)
        endo = self._players(circuit)
        outcome = get_engine("exact").explain_circuit(
            circuit, endo, self._options()
        ).detail
        return TupleExplanation(answer, outcome)

    def explain(self, query: QueryLike) -> dict[tuple, TupleExplanation]:
        """Exact Shapley values for every answer of the query."""
        result = self.lineage(query)
        return {
            answer: self.explain_answer(result, answer)
            for answer in result.tuples()
        }

    def explain_many(
        self, query: QueryLike, max_workers: int | None = None
    ) -> dict[tuple, TupleExplanation]:
        """Batched :meth:`explain`: dedupe isomorphic lineages up front,
        compile each distinct shape once through an
        :class:`~repro.engine.cache.ArtifactCache`, and fan answers out
        over a thread pool.  Values are identical to :meth:`explain`;
        each answer keeps its own budget/timeout outcome.
        """
        from ..engine.cache import ArtifactCache
        from ..engine.session import ExplainSession

        if not self.restrict_to_lineage:
            # The batched path scopes players to each answer's lineage;
            # whole-database player lists stay on the sequential path.
            return self.explain(query)
        if self.cache is None:
            self.cache = ArtifactCache()
        session = ExplainSession(
            self.database, method="exact", options=self._options(),
            cache=self.cache, max_workers=max_workers,
        )
        results = session.explain_many(query)
        return {
            answer: TupleExplanation(answer, engine_result.detail)
            for answer, engine_result in results.items()
        }

    def _players(self, circuit: Circuit) -> list[Fact]:
        if self.restrict_to_lineage:
            present = circuit.reachable_vars()
            return sorted(present)
        return self.database.endogenous_facts()
