"""Algorithm 1: exact Shapley values from a d-DNNF circuit.

Given a deterministic and decomposable circuit representing the
endogenous lineage ``ELin(q, Dx, Dn)``, the Shapley value of an
endogenous fact ``f`` is (Equation 3 of the paper):

    Shapley(f) = sum_k  k! (n-k-1)! / n!  *  (#SAT_k(C[f->1]) - #SAT_k(C[f->0]))

with ``n = |Dn|`` and counts completed over all endogenous facts.

Three computation modes are provided:

* ``"conditioning"`` — the paper's literal Algorithm 1: condition the
  circuit on ``f -> 1`` and ``f -> 0`` and recount, once per fact;
  ``O(|C| * n^2)`` per fact.
* ``"derivative"`` (default) — one forward pass computing the
  size-generating polynomial of every gate plus one backward
  (circuit-derivative) pass yields the conditioned-count *differences*
  of all facts simultaneously, in the style of Arenas et al.'s
  SHAP-score algorithm.  The passes are *smoothing-free*: instead of
  materializing ``(x v -x)`` padding gates, per-child OR gaps carry
  binomial completion factors through both sweeps (free-variable
  contributions cancel in the difference), and the traversal runs on a
  compiled :class:`~repro.core.numerics.tape.GateTape` so repeated
  circuit shapes pay no gate-level walk at all.
* ``"smoothed"`` — the previous derivative implementation over an
  explicitly ``smooth()``-ed circuit; kept as the ablation baseline
  the smoothing-free pass is benchmarked against.

All modes agree exactly (asserted by the parity suite), on every
numeric kernel (:mod:`repro.core.numerics`).  All arithmetic is exact
(`int` counts, `Fraction` values).
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Hashable, Iterable, Mapping, Sequence

from ..circuits.circuit import AND, FALSE, NOT, OR, TRUE, VAR, Circuit, CircuitError
from ..circuits.dnnf import count_models_by_size, smooth
from .numerics import GateTape, compile_tape
from .numerics.base import Kernel, get_kernel, shapley_coefficients
from .numerics.batched import batched_fastpath_diffs
from .numerics.fixed import FastpathStats, Int64Kernel, fastpath_diffs

__all__ = [
    "ShapleyTimeout",
    "shapley_coefficients",
    "shapley_from_counts",
    "conditioned_counts",
    "shapley_of_fact",
    "shapley_all_facts",
    "shapley_all_facts_batched",
    "efficiency_gap",
]

#: The all-facts strategies accepted by :func:`shapley_all_facts`.
MODES = ("derivative", "smoothed", "conditioning")


class ShapleyTimeout(RuntimeError):
    """Raised when an exact Shapley computation exceeds its deadline."""


def _check_time(deadline: float | None) -> None:
    if deadline is not None and time.perf_counter() > deadline:
        raise ShapleyTimeout("exact Shapley computation timed out")


def _resolve_kernel(kernel) -> Kernel:
    if isinstance(kernel, Kernel):
        return kernel
    return get_kernel(kernel)


def shapley_from_counts(
    counts_pos: Sequence[int],
    counts_neg: Sequence[int],
    n: int,
    kernel=None,
) -> Fraction:
    """Combine conditioned counts into a Shapley value (Equation 3).

    ``counts_pos[k] = #SAT_k(C[f->1])`` and ``counts_neg[k] =
    #SAT_k(C[f->0])``, both completed over the ``n - 1`` other
    endogenous facts.  Delegates to the kernel's single Equation-3
    implementation (shared with the derivative passes), which
    zero-pads vectors shorter than ``n`` and ignores entries at
    ``k >= n``.
    """
    return _resolve_kernel(kernel).equation3(counts_pos, counts_neg, n)


def conditioned_counts(
    circuit: Circuit, fact: Hashable, kernel=None
) -> tuple[list[int], int, list[int], int]:
    """``#SAT_k`` of ``C[f->1]`` and ``C[f->0]`` over their own variable
    sets.  Returns ``(counts1, vars1, counts0, vars0)``."""
    positive = circuit.condition({fact: True})
    negative = circuit.condition({fact: False})
    counts1, vars1 = _counts_or_constant(positive, kernel)
    counts0, vars0 = _counts_or_constant(negative, kernel)
    return counts1, vars1, counts0, vars0


def _counts_or_constant(circuit: Circuit, kernel=None) -> tuple[list[int], int]:
    root = circuit.output_gate()
    kind = circuit.kind(root)
    if kind == TRUE:
        return [1], 0
    if kind == FALSE:
        return [0], 0
    return count_models_by_size(circuit, kernel=kernel)


def _conditioned_shapley(
    circuit: Circuit, n: int, fact: Hashable, kernel: Kernel
) -> Fraction:
    """One fact's value by conditioning, with all loop-invariant work
    (reachability, player-set normalization) hoisted to the caller."""
    counts1, vars1, counts0, vars0 = conditioned_counts(circuit, fact, kernel)
    # Complete each count vector over the remaining n - 1 endogenous
    # facts (Algorithm 1 line 1, realized as a binomial convolution).
    full1 = kernel.complete(counts1, (n - 1) - vars1)
    full0 = kernel.complete(counts0, (n - 1) - vars0)
    return kernel.equation3(full1, full0, n)


def shapley_of_fact(
    circuit: Circuit,
    endogenous_facts: Iterable[Hashable],
    fact: Hashable,
    deadline: float | None = None,
    kernel=None,
) -> Fraction:
    """Shapley value of one endogenous fact (conditioning mode).

    ``circuit`` represents ``ELin(q, Dx, Dn)``; its variables must be a
    subset of ``endogenous_facts``.  Facts absent from the circuit have
    Shapley value 0 (they never change the query result).
    """
    endo = list(endogenous_facts)
    n = len(endo)
    if fact not in set(endo):
        raise ValueError(f"{fact!r} is not an endogenous fact")
    _check_time(deadline)
    if fact not in circuit.reachable_vars():
        return Fraction(0)
    return _conditioned_shapley(circuit, n, fact, _resolve_kernel(kernel))


def shapley_all_facts(
    circuit: Circuit,
    endogenous_facts: Iterable[Hashable],
    method: str = "derivative",
    deadline: float | None = None,
    kernel=None,
    tape: GateTape | None = None,
    fastpath_stats: FastpathStats | None = None,
    fastpath_budget_bytes: int | None = None,
) -> dict[Hashable, Fraction]:
    """Shapley values of every endogenous fact.

    ``method`` is ``"derivative"`` (one shared smoothing-free pass,
    default), ``"smoothed"`` (the legacy shared pass over an explicitly
    smoothed circuit), or ``"conditioning"`` (the paper's per-fact
    loop).  ``kernel`` selects the numeric backend (instance, name, or
    ``None`` for the reference; ``"int64"``/``"auto"`` additionally arm
    the machine-width level-scheduled fast path of the derivative mode,
    which falls back per shape to the interpreted exact pass whenever
    its a-priori magnitude bounds cannot certify native arithmetic —
    hits and fallbacks are counted into ``fastpath_stats`` when given).
    ``tape`` optionally supplies a prebuilt
    :class:`~repro.core.numerics.tape.GateTape` of *this* circuit
    (derivative mode only) — the engine layer threads cached tapes
    through so warm shapes skip circuit traversal entirely.
    """
    endo = list(endogenous_facts)
    resolved = _resolve_kernel(kernel)
    if method == "conditioning":
        n = len(endo)
        values: dict[Hashable, Fraction] = {}
        zero = Fraction(0)
        # Loop invariants hoisted: one reachability pass and one player
        # normalization serve every fact.
        present = circuit.reachable_vars()
        for fact in endo:
            _check_time(deadline)
            if fact not in present:
                values[fact] = zero
            else:
                values[fact] = _conditioned_shapley(circuit, n, fact, resolved)
        return values
    if method == "smoothed":
        return _shapley_all_smoothed(circuit, endo, deadline, resolved)
    if method != "derivative":
        raise ValueError(f"unknown method {method!r}; choose from {MODES}")
    return _shapley_all_derivative(
        circuit, endo, deadline, resolved, tape, fastpath_stats,
        fastpath_budget_bytes,
    )


def _foreign_vars_error(present: set, endo_set: set) -> CircuitError:
    return CircuitError(
        "circuit mentions variables outside the endogenous set: "
        f"{sorted(map(repr, present - endo_set))[:5]}"
    )


def _shapley_all_derivative(
    circuit: Circuit | None,
    endo: list[Hashable],
    deadline: float | None = None,
    kernel: Kernel | None = None,
    tape: GateTape | None = None,
    fastpath_stats: FastpathStats | None = None,
    fastpath_budget_bytes: int | None = None,
) -> dict[Hashable, Fraction]:
    """Smoothing-free shared pass over a compiled gate tape.

    The forward sweep is Lemma 4.5 with per-child OR-gap binomials; the
    backward sweep pushes the circuit derivative down the same tape,
    accumulating per-variable *difference* vectors ``#SAT_m(C[x->1]) -
    #SAT_m(C[x->0])`` directly — models in which ``x`` is free (what
    smoothing pads exist to represent) contribute equally to both
    conditionings and are never materialized.

    With the ``"int64"`` kernel selected (directly or via ``"auto"``),
    the sweeps run level-scheduled and machine-width when the tape's
    magnitude bounds allow (:func:`~.numerics.fixed.fastpath_diffs`);
    a shape the bounds cannot certify falls back to the per-gate
    interpreted pass below, so the returned Fractions are identical
    either way.
    """
    kernel = kernel if kernel is not None else get_kernel(None)
    n = len(endo)
    zero = Fraction(0)
    values: dict[Hashable, Fraction] = {fact: zero for fact in endo}
    if n == 0:
        return values

    if tape is None:
        simplified = circuit.condition({})
        if simplified.kind(simplified.output_gate()) in (TRUE, FALSE):
            return values
        present = simplified.reachable_vars()
        endo_set = set(endo)
        if not present <= endo_set:
            raise _foreign_vars_error(present, endo_set)
        _check_time(deadline)
        tape = compile_tape(simplified)
    else:
        if tape.is_constant:
            return values
        present = tape.labels()
        endo_set = set(endo)
        if not present <= endo_set:
            raise _foreign_vars_error(present, endo_set)

    check = (lambda: _check_time(deadline)) if deadline is not None else None
    _check_time(deadline)
    diffs = None
    if isinstance(kernel, Int64Kernel):
        diffs = fastpath_diffs(
            tape, fastpath_stats, check, fastpath_budget_bytes)
        _check_time(deadline)
    if diffs is None:
        vals = tape.forward(kernel, check)
        _check_time(deadline)
        diffs = tape.backward_diffs(kernel, vals, check)
    _check_time(deadline)
    return _combine_diffs(values, tape, diffs, kernel, n)


def _combine_diffs(
    values: dict[Hashable, Fraction],
    tape: GateTape,
    diffs: Mapping[int, list[int]],
    kernel: Kernel,
    n: int,
) -> dict[Hashable, Fraction]:
    """Fold per-slot difference vectors into ``values`` (Equation 3)."""
    extra = n - tape.root_nvars  # endogenous facts outside the circuit
    for slot, diff in diffs.items():
        values[tape.var_labels[slot]] = kernel.equation3(
            kernel.complete(diff, extra), None, n
        )
    return values


def shapley_all_facts_batched(
    tapes: Sequence[GateTape],
    endo_lists: Sequence[Iterable[Hashable]],
    deadline: float | None = None,
    kernel=None,
    fastpath_stats: FastpathStats | None = None,
    fastpath_budget_bytes: int | None = None,
) -> list[dict[Hashable, Fraction]]:
    """Shapley values for a *same-shape answer group*, derivative mode.

    ``tapes[i]`` is answer *i*'s (re-targeted) gate tape and
    ``endo_lists[i]`` its endogenous facts.  With a machine-width
    kernel selected, the group's forward/backward sweeps run as one
    batched ``(batch, planes, slots, width)`` pass
    (:func:`~.numerics.batched.batched_fastpath_diffs`); any lane whose
    runtime sentinel trips — and every lane of an ineligible shape —
    falls back individually to the interpreted per-gate pass, so each
    answer's Fractions are identical to :func:`shapley_all_facts` on
    every input.  The ``"torch"`` kernel routes the batched sweeps
    through the optional torch backend (CUDA when available).
    """
    if len(tapes) != len(endo_lists):
        raise ValueError("tapes and endo_lists must have equal length")
    resolved = _resolve_kernel(kernel)
    check = (lambda: _check_time(deadline)) if deadline is not None else None
    outputs: list[dict[Hashable, Fraction] | None] = []
    lanes: list[int] = []  # indices that join the batched sweep
    zero = Fraction(0)
    per_answer: list[tuple[list[Hashable], dict[Hashable, Fraction]]] = []
    for tape, endo_facts in zip(tapes, endo_lists):
        endo = list(endo_facts)
        values: dict[Hashable, Fraction] = {fact: zero for fact in endo}
        per_answer.append((endo, values))
        if len(endo) == 0 or tape.is_constant:
            outputs.append(values)
            continue
        present = tape.labels()
        endo_set = set(endo)
        if not present <= endo_set:
            raise _foreign_vars_error(present, endo_set)
        outputs.append(None)
        lanes.append(len(outputs) - 1)

    diffs_by_lane: list[dict[int, list[int]] | None] | None = None
    if lanes and isinstance(resolved, Int64Kernel):
        backend = resolved.name if resolved.name == "torch" else None
        _check_time(deadline)
        diffs_by_lane = batched_fastpath_diffs(
            [tapes[i] for i in lanes], fastpath_stats, check,
            fastpath_budget_bytes, backend,
        )
    for position, index in enumerate(lanes):
        _check_time(deadline)
        tape = tapes[index]
        endo, values = per_answer[index]
        diffs = diffs_by_lane[position] if diffs_by_lane else None
        if diffs is None:
            vals = tape.forward(resolved, check)
            _check_time(deadline)
            diffs = tape.backward_diffs(resolved, vals, check)
        outputs[index] = _combine_diffs(
            values, tape, diffs, resolved, len(endo))
    return outputs


def _shapley_all_smoothed(
    circuit: Circuit,
    endo: list[Hashable],
    deadline: float | None = None,
    kernel: Kernel | None = None,
) -> dict[Hashable, Fraction]:
    """Legacy shared pass: smooth the circuit, then compute conditioned
    counts for all variables with one forward and one backward sweep.

    Kept as the ablation baseline for the smoothing-free tape pass
    (``benchmarks/bench_ablation_shapley_modes.py``); both return
    identical Fractions on every input.
    """
    kernel = kernel if kernel is not None else get_kernel(None)
    n = len(endo)
    zero = Fraction(0)
    values: dict[Hashable, Fraction] = {fact: zero for fact in endo}
    if n == 0:
        return values

    simplified = circuit.condition({})
    root_kind = simplified.kind(simplified.output_gate())
    if root_kind in (TRUE, FALSE):
        return values
    present = simplified.reachable_vars()
    endo_set = set(endo)
    if not present <= endo_set:
        raise _foreign_vars_error(present, endo_set)

    smoothed = smooth(simplified)
    root = smoothed.output_gate()
    var_sets = smoothed.gate_var_sets(root)
    v = len(var_sets[root])
    extra = (n - 1) - (v - 1)  # endogenous facts outside the circuit

    _check_time(deadline)
    # Forward: val[g][k] = #SAT_k of the function of g over Vars(g).
    val: dict[int, list[int]] = {}
    for gate in sorted(var_sets):
        kind = smoothed.kind(gate)
        if kind == VAR:
            val[gate] = [0, 1]
        elif kind == NOT:
            child = smoothed.children(gate)[0]
            if smoothed.kind(child) != VAR:
                raise CircuitError("derivative mode requires NNF circuits")
            val[gate] = [1, 0]
        elif kind == TRUE:
            val[gate] = [1]
        elif kind == FALSE:
            val[gate] = [0]
        elif kind == AND:
            acc = [1]
            for child in smoothed.children(gate):
                acc = kernel.poly_mul(acc, val[child])
            val[gate] = acc
        else:  # OR (smooth: children cover Vars(g))
            nvars = len(var_sets[gate])
            acc = [0] * (nvars + 1)
            for child in smoothed.children(gate):
                for k, count in enumerate(val[child]):
                    acc[k] += count
            val[gate] = acc

    _check_time(deadline)
    # Backward: der[g][m] = number of (model of root, certificate
    # containing g) pairs where the model has m true variables outside
    # Vars(g).  der at a literal leaf therefore gives the conditioned
    # counts of its variable.
    der: dict[int, list[int]] = {root: [1]}
    order = sorted(var_sets, reverse=True)
    for gate in order:
        d = der.get(gate)
        if d is None or not any(d):
            continue
        kind = smoothed.kind(gate)
        if kind == OR:
            for child in smoothed.children(gate):
                der[child] = kernel.poly_add(der.get(child), d)
        elif kind == AND:
            children = smoothed.children(gate)
            # prefix/suffix products of sibling value polynomials
            prefix = [[1]]
            for child in children[:-1]:
                prefix.append(kernel.poly_mul(prefix[-1], val[child]))
            suffix = [1]
            for index in range(len(children) - 1, -1, -1):
                sibling_product = kernel.poly_mul(prefix[index], suffix)
                contribution = kernel.poly_mul(d, sibling_product)
                der[children[index]] = kernel.poly_add(
                    der.get(children[index]), contribution
                )
                suffix = kernel.poly_mul(suffix, val[children[index]]) if index else suffix
        # NOT / VAR / constants: leaves for this pass.

    _check_time(deadline)
    # Collect per-variable positive/negative leaf derivatives:
    # der at leaf x gives #SAT_k(C[x->1]); der at leaf (not x) gives
    # #SAT_k(C[x->0]), both over Vars(C) minus x.
    pos_counts: dict[Hashable, list[int]] = {}
    neg_counts: dict[Hashable, list[int]] = {}
    for gate in var_sets:
        kind = smoothed.kind(gate)
        if kind == VAR:
            label = smoothed.label(gate)
            if gate in der:
                pos_counts[label] = kernel.poly_add(
                    pos_counts.get(label), der[gate]
                )
        elif kind == NOT:
            child = smoothed.children(gate)[0]
            label = smoothed.label(child)
            if gate in der:
                neg_counts[label] = kernel.poly_add(
                    neg_counts.get(label), der[gate]
                )

    for label in present:
        counts1 = kernel.complete(pos_counts.get(label, [0]), extra)
        counts0 = kernel.complete(neg_counts.get(label, [0]), extra)
        values[label] = kernel.equation3(counts1, counts0, n)
    return values


def efficiency_gap(
    values: Mapping[Hashable, Fraction],
    circuit: Circuit,
    endogenous_facts: Iterable[Hashable],
) -> Fraction:
    """The efficiency axiom: ``sum_f Shapley(f) = q(Dn u Dx) - q(Dx)``.

    Returns the difference between the two sides — handy as a built-in
    sanity check (it should always be zero for exact values).
    """
    endo = set(endogenous_facts)
    total = sum(values.values(), Fraction(0))
    all_true = Fraction(1) if circuit.evaluate(endo) else Fraction(0)
    none_true = Fraction(1) if circuit.evaluate(set()) else Fraction(0)
    return total - (all_true - none_true)
