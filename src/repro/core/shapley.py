"""Algorithm 1: exact Shapley values from a d-DNNF circuit.

Given a deterministic and decomposable circuit representing the
endogenous lineage ``ELin(q, Dx, Dn)``, the Shapley value of an
endogenous fact ``f`` is (Equation 3 of the paper):

    Shapley(f) = sum_k  k! (n-k-1)! / n!  *  (#SAT_k(C[f->1]) - #SAT_k(C[f->0]))

with ``n = |Dn|`` and counts completed over all endogenous facts.

Two computation modes are provided:

* ``"conditioning"`` — the paper's literal Algorithm 1: condition the
  circuit on ``f -> 1`` and ``f -> 0`` and recount, once per fact;
  ``O(|C| * n^2)`` per fact.
* ``"derivative"`` — a single forward pass computing the size-generating
  polynomial of every gate plus one backward (circuit-derivative) pass
  over the smoothed circuit yields the conditioned counts of *all*
  facts simultaneously, in the style of Arenas et al.'s SHAP-score
  algorithm.  Tests assert both modes agree.

All arithmetic is exact (`int` counts, `Fraction` values).
"""

from __future__ import annotations

import time
from fractions import Fraction
from math import comb, factorial
from typing import Hashable, Iterable, Mapping, Sequence

from ..circuits.circuit import AND, FALSE, NOT, OR, TRUE, VAR, Circuit, CircuitError
from ..circuits.dnnf import complete_counts, count_models_by_size, smooth


class ShapleyTimeout(RuntimeError):
    """Raised when an exact Shapley computation exceeds its deadline."""


def shapley_coefficients(n: int) -> list[Fraction]:
    """The permutation weights ``k!(n-k-1)!/n!`` for ``k = 0..n-1``."""
    if n <= 0:
        return []
    n_fact = factorial(n)
    return [Fraction(factorial(k) * factorial(n - k - 1), n_fact) for k in range(n)]


def _check_time(deadline: float | None) -> None:
    if deadline is not None and time.perf_counter() > deadline:
        raise ShapleyTimeout("exact Shapley computation timed out")


def shapley_from_counts(
    counts_pos: Sequence[int], counts_neg: Sequence[int], n: int
) -> Fraction:
    """Combine conditioned counts into a Shapley value (Equation 3).

    ``counts_pos[k] = #SAT_k(C[f->1])`` and ``counts_neg[k] =
    #SAT_k(C[f->0])``, both completed over the ``n - 1`` other
    endogenous facts.
    """
    coefficients = shapley_coefficients(n)
    total = Fraction(0)
    for k in range(n):
        pos = counts_pos[k] if k < len(counts_pos) else 0
        neg = counts_neg[k] if k < len(counts_neg) else 0
        if pos != neg:
            total += coefficients[k] * (pos - neg)
    return total


def conditioned_counts(
    circuit: Circuit, fact: Hashable
) -> tuple[list[int], int, list[int], int]:
    """``#SAT_k`` of ``C[f->1]`` and ``C[f->0]`` over their own variable
    sets.  Returns ``(counts1, vars1, counts0, vars0)``."""
    positive = circuit.condition({fact: True})
    negative = circuit.condition({fact: False})
    counts1, vars1 = _counts_or_constant(positive)
    counts0, vars0 = _counts_or_constant(negative)
    return counts1, vars1, counts0, vars0


def _counts_or_constant(circuit: Circuit) -> tuple[list[int], int]:
    root = circuit.output_gate()
    kind = circuit.kind(root)
    if kind == TRUE:
        return [1], 0
    if kind == FALSE:
        return [0], 0
    return count_models_by_size(circuit)


def shapley_of_fact(
    circuit: Circuit,
    endogenous_facts: Iterable[Hashable],
    fact: Hashable,
    deadline: float | None = None,
) -> Fraction:
    """Shapley value of one endogenous fact (conditioning mode).

    ``circuit`` represents ``ELin(q, Dx, Dn)``; its variables must be a
    subset of ``endogenous_facts``.  Facts absent from the circuit have
    Shapley value 0 (they never change the query result).
    """
    endo = list(endogenous_facts)
    n = len(endo)
    if fact not in set(endo):
        raise ValueError(f"{fact!r} is not an endogenous fact")
    _check_time(deadline)
    present = circuit.reachable_vars()
    if fact not in present:
        return Fraction(0)
    counts1, vars1, counts0, vars0 = conditioned_counts(circuit, fact)
    # Complete each count vector over the remaining n - 1 endogenous
    # facts (Algorithm 1 line 1, realized as a binomial convolution).
    full1 = complete_counts(counts1, (n - 1) - vars1)
    full0 = complete_counts(counts0, (n - 1) - vars0)
    return shapley_from_counts(full1, full0, n)


def shapley_all_facts(
    circuit: Circuit,
    endogenous_facts: Iterable[Hashable],
    method: str = "derivative",
    deadline: float | None = None,
) -> dict[Hashable, Fraction]:
    """Shapley values of every endogenous fact.

    ``method`` is ``"derivative"`` (one shared pass, default) or
    ``"conditioning"`` (the paper's per-fact loop).
    """
    endo = list(endogenous_facts)
    if method == "conditioning":
        values: dict[Hashable, Fraction] = {}
        present = circuit.reachable_vars()
        missing = Fraction(0)
        for fact in endo:
            _check_time(deadline)
            if fact not in present:
                values[fact] = missing
            else:
                values[fact] = shapley_of_fact(circuit, endo, fact, deadline=deadline)
        return values
    if method != "derivative":
        raise ValueError(f"unknown method {method!r}")
    return _shapley_all_derivative(circuit, endo, deadline=deadline)


def _shapley_all_derivative(
    circuit: Circuit,
    endo: list[Hashable],
    deadline: float | None = None,
) -> dict[Hashable, Fraction]:
    """Shared-pass mode: smooth the circuit, then compute conditioned
    counts for all variables with one forward and one backward sweep."""
    n = len(endo)
    zero = Fraction(0)
    values: dict[Hashable, Fraction] = {fact: zero for fact in endo}
    if n == 0:
        return values

    simplified = circuit.condition({})
    root_kind = simplified.kind(simplified.output_gate())
    if root_kind in (TRUE, FALSE):
        return values
    present = simplified.reachable_vars()
    endo_set = set(endo)
    if not present <= endo_set:
        raise CircuitError(
            "circuit mentions variables outside the endogenous set: "
            f"{sorted(map(repr, present - endo_set))[:5]}"
        )

    smoothed = smooth(simplified)
    root = smoothed.output_gate()
    var_sets = smoothed.gate_var_sets(root)
    v = len(var_sets[root])
    extra = (n - 1) - (v - 1)  # endogenous facts outside the circuit

    _check_time(deadline)
    # Forward: val[g][k] = #SAT_k of the function of g over Vars(g).
    val: dict[int, list[int]] = {}
    for gate in sorted(var_sets):
        kind = smoothed.kind(gate)
        if kind == VAR:
            val[gate] = [0, 1]
        elif kind == NOT:
            child = smoothed.children(gate)[0]
            if smoothed.kind(child) != VAR:
                raise CircuitError("derivative mode requires NNF circuits")
            val[gate] = [1, 0]
        elif kind == TRUE:
            val[gate] = [1]
        elif kind == FALSE:
            val[gate] = [0]
        elif kind == AND:
            acc = [1]
            for child in smoothed.children(gate):
                acc = _poly_mul(acc, val[child])
            val[gate] = acc
        else:  # OR (smooth: children cover Vars(g))
            nvars = len(var_sets[gate])
            acc = [0] * (nvars + 1)
            for child in smoothed.children(gate):
                for k, count in enumerate(val[child]):
                    acc[k] += count
            val[gate] = acc

    _check_time(deadline)
    # Backward: der[g][m] = number of (model of root, certificate
    # containing g) pairs where the model has m true variables outside
    # Vars(g).  der at a literal leaf therefore gives the conditioned
    # counts of its variable.
    der: dict[int, list[int]] = {root: [1]}
    order = sorted(var_sets, reverse=True)
    for gate in order:
        d = der.get(gate)
        if d is None or not any(d):
            continue
        kind = smoothed.kind(gate)
        if kind == OR:
            for child in smoothed.children(gate):
                _poly_add_into(der, child, d)
        elif kind == AND:
            children = smoothed.children(gate)
            # prefix/suffix products of sibling value polynomials
            prefix = [[1]]
            for child in children[:-1]:
                prefix.append(_poly_mul(prefix[-1], val[child]))
            suffix = [1]
            for index in range(len(children) - 1, -1, -1):
                sibling_product = _poly_mul(prefix[index], suffix)
                contribution = _poly_mul(d, sibling_product)
                _poly_add_into(der, children[index], contribution)
                suffix = _poly_mul(suffix, val[children[index]]) if index else suffix
        # NOT / VAR / constants: leaves for this pass.

    _check_time(deadline)
    coefficients = shapley_coefficients(n)

    # Collect per-variable positive/negative leaf derivatives:
    # der at leaf x gives #SAT_k(C[x->1]); der at leaf (not x) gives
    # #SAT_k(C[x->0]), both over Vars(C) minus x.
    pos_counts: dict[Hashable, list[int]] = {}
    neg_counts: dict[Hashable, list[int]] = {}
    for gate in var_sets:
        kind = smoothed.kind(gate)
        if kind == VAR:
            label = smoothed.label(gate)
            if gate in der:
                pos_counts[label] = _poly_accumulate(
                    pos_counts.get(label), der[gate]
                )
        elif kind == NOT:
            child = smoothed.children(gate)[0]
            label = smoothed.label(child)
            if gate in der:
                neg_counts[label] = _poly_accumulate(
                    neg_counts.get(label), der[gate]
                )

    for label in present:
        counts1 = complete_counts(pos_counts.get(label, [0]), extra)
        counts0 = complete_counts(neg_counts.get(label, [0]), extra)
        total = Fraction(0)
        for k in range(n):
            pos = counts1[k] if k < len(counts1) else 0
            neg = counts0[k] if k < len(counts0) else 0
            if pos != neg:
                total += coefficients[k] * (pos - neg)
        values[label] = total
    return values


def _poly_mul(a: Sequence[int], b: Sequence[int]) -> list[int]:
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if not ai:
            continue
        for j, bj in enumerate(b):
            if bj:
                out[i + j] += ai * bj
    return out


def _poly_add_into(store: dict[int, list[int]], key: int, poly: Sequence[int]) -> None:
    existing = store.get(key)
    if existing is None:
        store[key] = list(poly)
        return
    if len(existing) < len(poly):
        existing.extend([0] * (len(poly) - len(existing)))
    for i, p in enumerate(poly):
        existing[i] += p


def _poly_accumulate(existing: list[int] | None, poly: Sequence[int]) -> list[int]:
    if existing is None:
        return list(poly)
    if len(existing) < len(poly):
        existing = existing + [0] * (len(poly) - len(existing))
    for i, p in enumerate(poly):
        existing[i] += p
    return existing


def efficiency_gap(
    values: Mapping[Hashable, Fraction],
    circuit: Circuit,
    endogenous_facts: Iterable[Hashable],
) -> Fraction:
    """The efficiency axiom: ``sum_f Shapley(f) = q(Dn u Dx) - q(Dx)``.

    Returns the difference between the two sides — handy as a built-in
    sanity check (it should always be zero for exact values).
    """
    endo = set(endogenous_facts)
    total = sum(values.values(), Fraction(0))
    all_true = Fraction(1) if circuit.evaluate(endo) else Fraction(0)
    none_true = Fraction(1) if circuit.evaluate(set()) else Fraction(0)
    return total - (all_true - none_true)
