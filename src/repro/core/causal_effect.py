"""Alternative responsibility measures from the paper's related work.

Besides the Shapley value, the paper cites two quantitative measures of
a fact's contribution to a query answer:

* the **causal effect** of Salimi et al. [30]: the difference of the
  answer's expected value when the fact is forced in vs. forced out,
  under independent inclusion of the other endogenous facts with
  probability 1/2.  Over a lineage circuit this is exactly the
  (normalized) **Banzhaf value**:

      CE(f) = ( #SAT(C[f->1]) - #SAT(C[f->0]) ) / 2^(n-1)

* the **counterfactual responsibility** of Meliou et al. [24]:
  ``1 / (1 + m)`` where ``m`` is the size of a smallest contingency set
  ``Γ`` such that removing ``Γ`` makes ``f`` counterfactual for the
  answer (0 if no such set exists).

Both are computed exactly here from the endogenous lineage; the test
suite compares their rankings against Shapley's.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import Hashable, Iterable

from ..circuits.circuit import FALSE, TRUE, Circuit
from ..circuits.dnnf import count_models_by_size


def _model_count_over(circuit: Circuit, n_players: int) -> int:
    """Model count of a conditioned d-D circuit, completed to the full
    player set (free players double the count)."""
    root = circuit.output_gate()
    kind = circuit.kind(root)
    if kind == TRUE:
        return 1 << n_players
    if kind == FALSE:
        return 0
    counts, nvars = count_models_by_size(circuit)
    return sum(counts) << (n_players - nvars)


def causal_effects(
    ddnnf: Circuit, endogenous_facts: Iterable[Hashable]
) -> dict[Hashable, Fraction]:
    """Causal effect (= Banzhaf value) of every endogenous fact.

    ``ddnnf`` must be a deterministic and decomposable circuit for the
    endogenous lineage (compile it with
    :func:`repro.compiler.compile_circuit`).
    """
    players = list(endogenous_facts)
    n = len(players)
    present = ddnnf.condition({}).reachable_vars()
    denominator = 1 << (n - 1) if n else 1
    effects: dict[Hashable, Fraction] = {}
    for fact in players:
        if fact not in present:
            effects[fact] = Fraction(0)
            continue
        on = _model_count_over(ddnnf.condition({fact: True}), n - 1)
        off = _model_count_over(ddnnf.condition({fact: False}), n - 1)
        effects[fact] = Fraction(on - off, denominator)
    return effects


def responsibility(
    circuit: Circuit,
    endogenous_facts: Iterable[Hashable],
    fact: Hashable,
    max_contingency: int | None = None,
) -> Fraction:
    """Counterfactual responsibility of ``fact`` (Meliou et al.).

    Searches contingency sets by increasing size (exponential in the
    worst case — the measure is NP-hard; ``max_contingency`` bounds the
    search).  The lineage is evaluated with all endogenous facts
    present, contingency facts removed.
    """
    players = [f for f in endogenous_facts if f != fact]
    if max_contingency is None:
        max_contingency = len(players)
    base = set(players) | {fact}
    if not circuit.evaluate(base):
        # The answer does not hold on the full database: responsibility
        # for a non-answer is out of scope here.
        return Fraction(0)
    for size in range(0, max_contingency + 1):
        for contingency in combinations(players, size):
            world = base - set(contingency)
            if circuit.evaluate(world) and not circuit.evaluate(world - {fact}):
                return Fraction(1, 1 + size)
    return Fraction(0)


def responsibilities(
    circuit: Circuit,
    endogenous_facts: Iterable[Hashable],
    max_contingency: int | None = None,
) -> dict[Hashable, Fraction]:
    """Counterfactual responsibility of every endogenous fact."""
    players = list(endogenous_facts)
    return {
        fact: responsibility(circuit, players, fact, max_contingency)
        for fact in players
    }
