"""The single-call user API: attribute a query answer to facts.

:func:`attribute` runs any of the paper's five methods on one query
answer and returns an :class:`Attribution` with values and a ranking:

>>> result = attribute(db, "SELECT country FROM ...", answer=("FR",),
...                    method="hybrid")
>>> result.top(5)
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Hashable

from ..compiler.knowledge import CompilationBudget
from ..db.database import Database
from ..db.evaluate import lineage
from .cnf_proxy import cnf_proxy_from_circuit
from .hybrid import hybrid_shapley
from .kernel_shap import kernel_shap_values
from .metrics import ranking as _ranking
from .monte_carlo import monte_carlo_shapley
from .pipeline import QueryLike, run_exact, to_plan

METHODS = ("exact", "hybrid", "proxy", "monte_carlo", "kernel_shap")


@dataclass
class Attribution:
    """Attribution of one query answer to the endogenous facts.

    ``exact`` tells whether ``values`` are true Shapley values or
    heuristic/sampled scores; ``seconds`` is the wall-clock cost.
    """

    answer: tuple
    method: str
    values: dict[Hashable, object]
    exact: bool
    seconds: float
    detail: object = field(default=None, repr=False)

    def ranking(self) -> list[Hashable]:
        """Facts by decreasing contribution."""
        return _ranking(self.values)

    def top(self, k: int = 10) -> list[tuple[Hashable, object]]:
        """The ``k`` most contributing facts with their scores."""
        return [(fact, self.values[fact]) for fact in self.ranking()[:k]]


def attribute(
    database: Database,
    query: QueryLike,
    answer: tuple | None = None,
    method: str = "hybrid",
    timeout: float = 2.5,
    samples_per_fact: int = 20,
    seed: int | None = None,
) -> Attribution:
    """Compute fact contributions for one answer of ``query``.

    Parameters
    ----------
    database:
        The database with its endogenous/exogenous partition.
    query:
        SQL text, a (U)CQ, or a relational-algebra plan.
    answer:
        The output tuple to explain.  May be omitted for Boolean queries
        (empty answer tuple) or queries with exactly one answer.
    method:
        One of ``exact`` (Algorithm 1; may be slow), ``hybrid``
        (exact-with-timeout then CNF Proxy — the paper's recommendation),
        ``proxy`` (CNF Proxy only), ``monte_carlo``, ``kernel_shap``.
    timeout:
        Budget in seconds for the exact/hybrid paths.
    samples_per_fact:
        Budget for the sampling baselines (the paper sweeps 10..50).
    seed:
        RNG seed for the sampling baselines.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
    plan = to_plan(query, database)
    result = lineage(plan, database, endogenous_only=True)
    answers = result.tuples()
    if answer is None:
        if len(answers) == 1:
            answer = answers[0]
        else:
            raise ValueError(
                f"query has {len(answers)} answers; pass `answer=` to pick one"
            )
    elif answer not in result.relation.rows:
        raise ValueError(f"{answer!r} is not an answer of the query")

    circuit = result.lineage_of(answer)
    endo = sorted(circuit.reachable_vars())
    start = time.perf_counter()

    if method == "exact":
        budget = CompilationBudget(max_seconds=timeout) if timeout else None
        outcome = run_exact(circuit, endo, budget=budget)
        seconds = time.perf_counter() - start
        if not outcome.ok:
            raise RuntimeError(
                f"exact computation failed ({outcome.status}): {outcome.error}; "
                "try method='hybrid'"
            )
        return Attribution(answer, method, outcome.values, True, seconds, outcome)

    if method == "hybrid":
        hybrid = hybrid_shapley(circuit, endo, timeout=timeout)
        seconds = time.perf_counter() - start
        return Attribution(
            answer, method, hybrid.values, hybrid.is_exact, seconds, hybrid
        )

    if method == "proxy":
        values = cnf_proxy_from_circuit(circuit, endo)
        seconds = time.perf_counter() - start
        return Attribution(answer, method, values, False, seconds)

    rng = random.Random(seed)
    if method == "monte_carlo":
        values = monte_carlo_shapley(
            circuit, endo, samples_per_fact=samples_per_fact, rng=rng
        )
    else:  # kernel_shap
        values = kernel_shap_values(
            circuit, endo, samples_per_fact=samples_per_fact, rng=rng
        )
    seconds = time.perf_counter() - start
    return Attribution(answer, method, values, False, seconds)
