"""The single-call user API: attribute a query answer to facts.

:func:`attribute` runs any of the paper's five methods on one query
answer and returns an :class:`Attribution` with values and a ranking:

>>> result = attribute(db, "SELECT country FROM ...", answer=("FR",),
...                    method="hybrid")
>>> result.top(5)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

from ..db.database import Database
from ..db.evaluate import lineage
from ..engine.base import EngineOptions, derive_answer_seed
from ..engine.registry import available_engines, get_engine
from .metrics import ranking as _ranking
from .pipeline import QueryLike, to_plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.cache import ArtifactCache

#: The registered engine names (kept for backwards compatibility; the
#: authoritative list is :func:`repro.engine.available_engines`).
METHODS = available_engines()


@dataclass
class Attribution:
    """Attribution of one query answer to the endogenous facts.

    ``exact`` tells whether ``values`` are true Shapley values or
    heuristic/sampled scores; ``seconds`` is the wall-clock cost.
    """

    answer: tuple
    method: str
    values: dict[Hashable, object]
    exact: bool
    seconds: float
    detail: object = field(default=None, repr=False)

    def ranking(self) -> list[Hashable]:
        """Facts by decreasing contribution."""
        return _ranking(self.values)

    def top(self, k: int = 10) -> list[tuple[Hashable, object]]:
        """The ``k`` most contributing facts with their scores."""
        return [(fact, self.values[fact]) for fact in self.ranking()[:k]]


def attribute(
    database: Database,
    query: QueryLike,
    answer: tuple | None = None,
    method: str = "hybrid",
    timeout: float = 2.5,
    samples_per_fact: int = 20,
    seed: int | None = None,
    cache: "ArtifactCache | None" = None,
    numeric_backend: str | None = None,
) -> Attribution:
    """Compute fact contributions for one answer of ``query``.

    Dispatch goes through the engine registry
    (:func:`repro.engine.get_engine`); any registered backend name is a
    valid ``method``.

    Parameters
    ----------
    database:
        The database with its endogenous/exogenous partition.
    query:
        SQL text, a (U)CQ, or a relational-algebra plan.
    answer:
        The output tuple to explain.  May be omitted for Boolean queries
        (empty answer tuple) or queries with exactly one answer.
    method:
        One of ``exact`` (Algorithm 1; may be slow), ``hybrid``
        (exact-with-timeout then CNF Proxy — the paper's recommendation),
        ``proxy`` (CNF Proxy only), ``monte_carlo``, ``kernel_shap``,
        or any engine registered with
        :func:`repro.engine.register_engine`.
    timeout:
        Budget in seconds for the exact/hybrid paths.
    samples_per_fact:
        Budget for the sampling baselines (the paper sweeps 10..50).
    seed:
        RNG seed for the sampling baselines.  The effective per-answer
        seed is :func:`~repro.engine.base.derive_answer_seed` of
        ``(seed, answer)`` — the same derivation the batched
        :meth:`~repro.engine.ExplainSession.explain_many` uses, so
        explaining an answer alone or in any batch/order yields the
        same sampled values.
    cache:
        Optional shared :class:`~repro.engine.cache.ArtifactCache`; for
        many answers prefer
        :meth:`repro.engine.ExplainSession.explain_many`.
    numeric_backend:
        Numeric kernel for the exact counting passes (see
        :mod:`repro.core.numerics`): ``None``/``"python"`` (reference),
        ``"numpy"`` (vectorized, falls back when NumPy is missing), or
        ``"auto"``.  Values are identical on every backend.
    """
    engine = get_engine(method)
    plan = to_plan(query, database)
    result = lineage(plan, database, endogenous_only=True)
    answers = result.tuples()
    if answer is None:
        if len(answers) == 1:
            answer = answers[0]
        else:
            raise ValueError(
                f"query has {len(answers)} answers; pass `answer=` to pick one"
            )
    elif answer not in result.relation.rows:
        raise ValueError(f"{answer!r} is not an answer of the query")

    circuit = result.lineage_of(answer)
    endo = sorted(circuit.reachable_vars())
    options = EngineOptions(
        timeout=timeout,
        samples_per_fact=samples_per_fact,
        seed=derive_answer_seed(seed, answer) if seed is not None else None,
        cache=cache,
        numeric_backend=numeric_backend,
    )
    outcome = engine.explain_circuit(circuit, endo, options)
    if not outcome.ok:
        hint = "; try method='hybrid'" if engine.name == "exact" else ""
        raise RuntimeError(
            f"{engine.name} computation failed ({outcome.status}): "
            f"{outcome.error}{hint}"
        )
    return Attribution(
        answer, engine.name, outcome.values, outcome.exact,
        outcome.seconds, outcome.detail,
    )
