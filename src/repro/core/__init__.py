"""The paper's contribution: Shapley values of facts in query answering."""

from .attribution import Attribution, attribute
from .causal_effect import causal_effects, responsibilities, responsibility
from .cnf_proxy import cnf_proxy_from_circuit, cnf_proxy_values, proxy_game
from .hybrid import HybridResult, hybrid_shapley
from .kernel_shap import kernel_shap_values
from .metrics import (
    kendall_tau,
    l1_error,
    l2_error,
    ndcg,
    precision_at_k,
    ranking,
    summarize,
)
from .monte_carlo import monte_carlo_shapley
from .naive import (
    game_from_circuit,
    game_from_query,
    shapley_naive,
    shapley_naive_permutations,
    shapley_naive_query,
)
from .pipeline import (
    ExactOutcome,
    ProvenanceStats,
    ShapleyExplainer,
    TupleExplanation,
    exact_shapley_of_circuit,
    run_exact,
    to_plan,
)
from .shap_score import shap_score_of_fact, shap_scores
from .pqe_reduction import (
    count_slices,
    interpolate_coefficients,
    shapley_all_via_pqe,
    shapley_via_pqe,
)
from .shapley import (
    ShapleyTimeout,
    efficiency_gap,
    shapley_all_facts,
    shapley_coefficients,
    shapley_from_counts,
    shapley_of_fact,
)

__all__ = [
    "Attribution", "attribute",
    "causal_effects", "responsibilities", "responsibility",
    "shap_score_of_fact", "shap_scores",
    "cnf_proxy_from_circuit", "cnf_proxy_values", "proxy_game",
    "HybridResult", "hybrid_shapley",
    "kernel_shap_values",
    "kendall_tau", "l1_error", "l2_error", "ndcg", "precision_at_k",
    "ranking", "summarize",
    "monte_carlo_shapley",
    "game_from_circuit", "game_from_query", "shapley_naive",
    "shapley_naive_permutations", "shapley_naive_query",
    "ExactOutcome", "ProvenanceStats", "ShapleyExplainer",
    "TupleExplanation", "exact_shapley_of_circuit", "run_exact", "to_plan",
    "count_slices", "interpolate_coefficients", "shapley_all_via_pqe",
    "shapley_via_pqe",
    "ShapleyTimeout", "efficiency_gap", "shapley_all_facts",
    "shapley_coefficients", "shapley_from_counts", "shapley_of_fact",
]
