"""Proposition 3.1: Shapley values via a PQE oracle.

The paper's theoretical headline: for *every* Boolean query ``q``,
``Shapley(q)`` polynomial-time Turing-reduces to ``PQE(q)``.  The proof
constructs, for each rational ``z``, the TID ``D_z`` that gives each
endogenous fact probability ``z / (1 + z)`` (exogenous facts get 1);
then

    (1 + z)^n  *  Pr(q, D_z)  =  sum_i  z^i  *  #Slices(q, Dx, Dn, i),

so ``n + 1`` oracle calls at distinct points determine the coefficients
``#Slices`` (the number of size-``i`` endogenous subsets satisfying the
query) through a Vandermonde system, solved here by exact Lagrange
interpolation over Fractions.  Equation (2) then assembles the Shapley
value from slice counts.
"""

from __future__ import annotations

from fractions import Fraction
from math import factorial
from typing import Callable, Hashable, Sequence

from ..db.database import Database, Fact
from ..probdb.pqe import Query, pqe
from ..probdb.tid import TupleIndependentDatabase

# A PQE oracle: (query, tid) -> probability (exact Fraction preferred).
PqeOracle = Callable[[Query, TupleIndependentDatabase], Fraction]


def interpolate_coefficients(
    points: Sequence[tuple[Fraction, Fraction]]
) -> list[Fraction]:
    """Coefficients of the degree-(m-1) polynomial through ``points``.

    Exact Lagrange interpolation over Fractions: with ``m`` distinct
    abscissae this inverts the Vandermonde system of the proposition's
    proof.  Returns coefficients in increasing degree order.
    """
    m = len(points)
    coefficients = [Fraction(0)] * m
    for i, (x_i, y_i) in enumerate(points):
        # Basis polynomial L_i expanded into coefficients.
        basis = [Fraction(1)]
        denominator = Fraction(1)
        for j, (x_j, _) in enumerate(points):
            if j == i:
                continue
            # basis *= (x - x_j)
            shifted = [Fraction(0)] + basis
            for k in range(len(basis)):
                shifted[k] -= x_j * basis[k]
            basis = shifted
            denominator *= x_i - x_j
        scale = y_i / denominator
        for k in range(len(basis)):
            coefficients[k] += scale * basis[k]
    return coefficients


def count_slices(
    query: Query,
    db: Database,
    endogenous: Sequence[Fact] | None = None,
    oracle: PqeOracle = pqe,
) -> list[int]:
    """``#Slices(q, Dx, Dn, k)`` for every ``k`` via ``n + 1`` PQE calls.

    ``endogenous`` overrides the database's endogenous set (used by the
    reduction itself, which needs slices with ``f`` moved to the
    exogenous side or deleted).
    """
    endo = list(endogenous) if endogenous is not None else db.endogenous_facts()
    n = len(endo)
    endo_set = set(endo)

    points: list[tuple[Fraction, Fraction]] = []
    for j in range(n + 1):
        z = Fraction(j + 1)
        prob_endo = z / (1 + z)
        probabilities = {fact: prob_endo for fact in endo_set}
        tid = TupleIndependentDatabase(db, probabilities)
        pr = oracle(query, tid)
        points.append((z, (1 + z) ** n * Fraction(pr)))

    coefficients = interpolate_coefficients(points)
    slices: list[int] = []
    for k in range(n + 1):
        value = coefficients[k] if k < len(coefficients) else Fraction(0)
        if value.denominator != 1:
            raise ArithmeticError(
                f"slice count #{k} is not an integer ({value}); "
                "the PQE oracle is not exact"
            )
        slices.append(int(value))
    return slices


def shapley_via_pqe(
    query: Query,
    db: Database,
    fact: Fact,
    oracle: PqeOracle = pqe,
) -> Fraction:
    """Shapley value of ``fact`` using only a PQE oracle (Prop. 3.1).

    Implements Equation (2): slice counts are computed twice, once with
    ``f`` forced present (moved to the exogenous side) and once with
    ``f`` deleted, over the remaining ``n - 1`` endogenous facts.
    """
    endo = db.endogenous_facts()
    if fact not in set(endo):
        raise ValueError(f"{fact!r} is not an endogenous fact")
    n = len(endo)
    others = [f for f in endo if f != fact]

    # #Slices(q, Dx u {f}, Dn \ {f}, k): f certain (probability 1).
    with_fact = db.copy()
    with_fact.set_endogenous(fact, False)
    slices_with = count_slices(query, with_fact, others, oracle)

    # #Slices(q, Dx, Dn \ {f}, k): f absent.
    without_fact = db.copy()
    without_fact.remove(fact)
    slices_without = count_slices(query, without_fact, others, oracle)

    n_fact = factorial(n)
    total = Fraction(0)
    for k in range(n):
        weight = Fraction(factorial(k) * factorial(n - k - 1), n_fact)
        total += weight * (slices_with[k] - slices_without[k])
    return total


def shapley_all_via_pqe(
    query: Query,
    db: Database,
    oracle: PqeOracle = pqe,
) -> dict[Fact, Fraction]:
    """Shapley value of every endogenous fact through the PQE reduction."""
    return {
        fact: shapley_via_pqe(query, db, fact, oracle)
        for fact in db.endogenous_facts()
    }
